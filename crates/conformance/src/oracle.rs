//! The differential oracle: layered invariant checks over one design.
//!
//! Each generated [`DesignSpec`] is pushed through every toolchain layer
//! and cross-checked against independent references:
//!
//! | invariant            | what it pins                                       |
//! |----------------------|----------------------------------------------------|
//! | `build`              | the spec instantiates through `DesignBuilder`      |
//! | `rebuild-hash`       | rebuilding yields the same `structural_hash`       |
//! | `serialize-roundtrip`| `to_text`/`from_text` is a stable fixpoint         |
//! | `sim-vs-reference`   | simulator output == plain-Rust reference, bitwise  |
//! | `sim-determinism`    | two simulator runs are bit-identical               |
//! | `backend-differential`| tape-compiled backend == interpreter, bitwise     |
//! | `estimate-finite`    | estimator cycles/area are finite and sane          |
//! | `skeleton-recost`    | full elaborate == skeleton + recost netlist        |
//! | `par-monotonic`      | more parallelism never shrinks raw area / adds time|
//! | `synth-capacity`     | synthesized resources are sane and bound the model |
//! | `cache-transparency` | `EstimateCache` hit == miss == uncached, bitwise   |
//! | `paramspace-legal`   | the sampled parameters are legal in their space    |
//! | `partition-identity` | K=1 partitioning == unpartitioned path, bitwise    |
//! | `partition-sim`      | a forced cut keeps outputs bitwise and adds exactly the link cycles, on both backends |

use dhdl_core::{serialize, structural_hash, Design, ParamSpace, ParamValues};
use dhdl_dse::{model_fingerprint, CachedModel, CostModel, EstimateCache};
use dhdl_estimate::{Estimate, Estimator};
use dhdl_sim::{
    compile, simulate, simulate_multi, simulate_partitioned, Backend, Bindings, CompileError,
    SimResult,
};
use dhdl_synth::partition::{util_proxy, FIT_MARGIN};
use dhdl_synth::{elaborate, elaborate_with, partition, synthesize, Skeleton};
use dhdl_target::{AreaReport, FpgaTarget, MultiFpgaPlatform, Platform};

use crate::gen::DesignSpec;

/// Calibration sample count for the shared estimator. Small enough to
/// keep harness start-up fast, large enough that the hybrid area model
/// is exercised for real (not a degenerate fit).
const CALIBRATION_SAMPLES: usize = 40;

/// Calibration seed — fixed and *independent* of the fuzz seed, so the
/// model under test is identical across fuzzing campaigns.
const CALIBRATION_SEED: u64 = 7;

/// One invariant violation observed for a design.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Stable invariant name (see the module table).
    pub invariant: &'static str,
    /// Human-readable detail: what diverged and by how much.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Shared context for conformance checks: the target platform, one
/// calibrated estimator, and one estimate cache reused across designs
/// (so cache transparency is checked under realistic shared state).
pub struct Conformance {
    platform: Platform,
    estimator: Estimator,
    cache: EstimateCache,
}

impl Default for Conformance {
    fn default() -> Self {
        Self::new()
    }
}

impl Conformance {
    /// Build the shared context (calibrates the estimator once).
    pub fn new() -> Self {
        let platform = Platform::maia();
        let (estimator, _report) =
            Estimator::calibrate_with(&platform, CALIBRATION_SAMPLES, CALIBRATION_SEED);
        let cache = EstimateCache::new(model_fingerprint(&estimator));
        Conformance {
            platform,
            estimator,
            cache,
        }
    }

    /// The platform the checks run against.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Run every invariant against one generated design spec.
    ///
    /// Returns the full list of violations (empty = conforming). Checks
    /// are layered: if the design does not even build, later layers are
    /// skipped rather than reported as cascading noise.
    pub fn check_design(&self, spec: &DesignSpec) -> Vec<Violation> {
        let mut v = Vec::new();
        let design = match spec.build() {
            Ok(d) => d,
            Err(e) => {
                v.push(Violation {
                    invariant: "build",
                    detail: format!("builder rejected generated spec: {e}"),
                });
                return v;
            }
        };
        self.check_structure(&design, spec.build(), &mut v);
        self.check_simulation(spec, &design, &mut v);
        self.check_estimator(spec, &design, &mut v);
        self.check_synth(&design, &mut v);
        self.check_cache(&design, &mut v);
        self.check_params(&spec.param_space(), &spec.param_values(), &mut v);
        self.check_partition(spec, &design, &mut v);
        v
    }

    pub(crate) fn check_structure(
        &self,
        design: &Design,
        rebuilt: dhdl_core::Result<Design>,
        v: &mut Vec<Violation>,
    ) {
        let h1 = structural_hash(design);
        match rebuilt {
            Ok(again) => {
                let h2 = structural_hash(&again);
                if h1 != h2 {
                    v.push(Violation {
                        invariant: "rebuild-hash",
                        detail: format!("rebuild changed structural hash: {h1:#x} vs {h2:#x}"),
                    });
                }
            }
            Err(e) => v.push(Violation {
                invariant: "rebuild-hash",
                detail: format!("second build failed: {e}"),
            }),
        }
        let text = serialize::to_text(design);
        match serialize::from_text(&text) {
            Ok(parsed) => {
                let h2 = structural_hash(&parsed);
                if h1 != h2 {
                    v.push(Violation {
                        invariant: "serialize-roundtrip",
                        detail: format!("round-trip changed structural hash: {h1:#x} vs {h2:#x}"),
                    });
                }
                let text2 = serialize::to_text(&parsed);
                if text != text2 {
                    v.push(Violation {
                        invariant: "serialize-roundtrip",
                        detail: "to_text(from_text(t)) != t (serialization not a fixpoint)"
                            .to_string(),
                    });
                }
            }
            Err(e) => v.push(Violation {
                invariant: "serialize-roundtrip",
                detail: format!("from_text failed on serialized design: {e}"),
            }),
        }
    }

    fn check_simulation(&self, spec: &DesignSpec, design: &Design, v: &mut Vec<Violation>) {
        let (x, y) = spec.inputs();
        let mut bindings = Bindings::new().bind("x", x.clone());
        if spec.uses_second() {
            bindings = bindings.bind("y", y.clone());
        }
        let first = match simulate(design, &self.platform, &bindings) {
            Ok(r) => r,
            Err(e) => {
                v.push(Violation {
                    invariant: "sim-vs-reference",
                    detail: format!("simulation failed on a legal design: {e}"),
                });
                return;
            }
        };
        let expected = spec.reference(&x, &y);
        compare_bits(&first, &expected, v);
        if first.cycles <= 0.0 || !first.cycles.is_finite() {
            v.push(Violation {
                invariant: "sim-vs-reference",
                detail: format!("non-positive simulated cycle count: {}", first.cycles),
            });
        }
        match simulate(design, &self.platform, &bindings) {
            Ok(second) => {
                let a = first.output("out").ok();
                let b = second.output("out").ok();
                let outputs_match = match (a, b) {
                    (Some(a), Some(b)) => {
                        a.len() == b.len()
                            && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
                    }
                    _ => false,
                };
                if !outputs_match || first.cycles.to_bits() != second.cycles.to_bits() {
                    v.push(Violation {
                        invariant: "sim-determinism",
                        detail: "re-running the simulator changed outputs or cycles".to_string(),
                    });
                }
            }
            Err(e) => v.push(Violation {
                invariant: "sim-determinism",
                detail: format!("second simulation failed: {e}"),
            }),
        }
        // Backend differential: the tape-compiled backend must be
        // bit-identical to the interpreter on every design it accepts —
        // outputs, cycles, transfers, profile and trace alike.
        match compile(design, &self.platform) {
            Ok(compiled) => match compiled.run(&bindings) {
                Ok(tape) => {
                    if let Some(diff) = first.bit_diff(&tape) {
                        v.push(Violation {
                            invariant: "backend-differential",
                            detail: format!("tape backend diverged from interpreter: {diff}"),
                        });
                    }
                }
                Err(e) => v.push(Violation {
                    invariant: "backend-differential",
                    detail: format!("tape backend failed where the interpreter succeeded: {e}"),
                }),
            },
            // Designs outside the tape subset fall back to the interpreter
            // in `simulate_compiled`; there is nothing to cross-check.
            Err(CompileError::Unsupported(_)) => {}
        }
    }

    fn check_estimator(&self, spec: &DesignSpec, design: &Design, v: &mut Vec<Violation>) {
        self.check_estimate_sane(design, v);
        if spec.par > 1 {
            let mut serial = spec.clone();
            serial.par = 1;
            if let Ok(sd) = serial.build() {
                self.check_par_monotonic(design, &sd, spec.par, v);
            }
        }
    }

    pub(crate) fn check_estimate_sane(&self, design: &Design, v: &mut Vec<Violation>) {
        let est = self.estimator.estimate(design);
        if !estimate_is_sane(&est) {
            v.push(Violation {
                invariant: "estimate-finite",
                detail: format!(
                    "non-finite or negative estimate: cycles={} alms={} regs={} dsps={} brams={}",
                    est.cycles, est.area.alms, est.area.regs, est.area.dsps, est.area.brams
                ),
            });
        }
        // Elaborate-once equivalence: costing a pre-built netlist must
        // be bit-identical to the all-in-one entry point (the DSE hot
        // path depends on this).
        let net = self.estimator.elaborate(design);
        let via_net = self.estimator.estimate_net(design, &net);
        if !estimates_bit_equal(&est, &via_net) {
            v.push(Violation {
                invariant: "skeleton-recost",
                detail: "estimate(d) != estimate_net(d, elaborate(d)) bitwise".to_string(),
            });
        }
    }

    /// Monotonicity in parallelism: serializing the inner pipes (par=1)
    /// must not *increase* raw datapath area, nor can it be faster than
    /// the parallel version under the analytic model.
    pub(crate) fn check_par_monotonic(
        &self,
        design: &Design,
        serial: &Design,
        par: u32,
        v: &mut Vec<Violation>,
    ) {
        let wide = self.estimator.raw_area(design);
        let narrow = self.estimator.raw_area(serial);
        // Small absolute slack: control/banking overhead is not
        // perfectly linear, but duplicated compute dominates.
        let slack = 1.0 + narrow.alms * 0.01;
        if wide.alms + slack < narrow.alms || wide.dsps + 0.5 < narrow.dsps {
            v.push(Violation {
                invariant: "par-monotonic",
                detail: format!(
                    "par={par} raw area (alms {:.1}, dsps {:.1}) below par=1 \
                     (alms {:.1}, dsps {:.1})",
                    wide.alms, wide.dsps, narrow.alms, narrow.dsps
                ),
            });
        }
        let fast = self.estimator.cycles(design);
        let slow = self.estimator.cycles(serial);
        if fast > slow * 1.05 + 16.0 {
            v.push(Violation {
                invariant: "par-monotonic",
                detail: format!(
                    "par={par} estimated {fast:.0} cycles, slower than par=1 ({slow:.0})"
                ),
            });
        }
    }

    pub(crate) fn check_synth(&self, design: &Design, v: &mut Vec<Violation>) {
        let fpga = &self.platform.fpga;
        let full = elaborate(design, fpga);
        let skel = Skeleton::of(design);
        let recost = elaborate_with(design, fpga, &skel);
        if full != recost {
            v.push(Violation {
                invariant: "skeleton-recost",
                detail: "elaborate(d) != elaborate_with(d, Skeleton::of(d))".to_string(),
            });
        }
        let rep = synthesize(design, fpga);
        let fields = [
            ("alms", rep.alms),
            ("regs", rep.regs),
            ("dsps", rep.dsps),
            ("brams", rep.brams),
        ];
        for (name, val) in fields {
            if !val.is_finite() || val < 0.0 {
                v.push(Violation {
                    invariant: "synth-capacity",
                    detail: format!("synthesized {name} is not a sane resource count: {val}"),
                });
            }
        }
        // Generated designs are small; they must land on the device and
        // the calibrated model must bound them to the same order of
        // magnitude as the synthesis ground truth.
        let area = AreaReport {
            alms: rep.alms,
            regs: rep.regs,
            dsps: rep.dsps,
            brams: rep.brams,
        };
        if !area.fits(fpga) {
            v.push(Violation {
                invariant: "synth-capacity",
                detail: format!(
                    "small generated design does not fit the target: alms {:.0}/{} dsps \
                     {:.0}/{} brams {:.0}/{}",
                    rep.alms, fpga.alms, rep.dsps, fpga.dsps, rep.brams, fpga.brams
                ),
            });
        }
        let est = self.estimator.area(design);
        let (bound, abs) = (8.0, 4_000.0);
        if est.alms > rep.alms * bound + abs || rep.alms > est.alms * bound + abs {
            v.push(Violation {
                invariant: "synth-capacity",
                detail: format!(
                    "model alms {:.0} and synthesized alms {:.0} disagree beyond {bound}x",
                    est.alms, rep.alms
                ),
            });
        }
    }

    pub(crate) fn check_cache(&self, design: &Design, v: &mut Vec<Violation>) {
        let direct = self.estimator.estimate(design);
        let cm = CachedModel::new(&self.estimator, &self.cache);
        // The first call may hit (a structurally identical design was
        // cached earlier in the campaign) or miss; the second call is a
        // guaranteed hit. All paths must be bit-identical to uncached.
        let first = cm.estimate(design);
        let second = cm.estimate(design);
        if !estimates_bit_equal(&direct, &first) || !estimates_bit_equal(&direct, &second) {
            v.push(Violation {
                invariant: "cache-transparency",
                detail: format!(
                    "cached estimate diverged from uncached: direct cycles={}, miss={}, hit={}",
                    direct.cycles, first.cycles, second.cycles
                ),
            });
        }
        if self.cache.get(structural_hash(design)).is_none() && estimate_is_sane(&direct) {
            v.push(Violation {
                invariant: "cache-transparency",
                detail: "finite estimate was not retained by the cache".to_string(),
            });
        }
    }

    /// The multi-FPGA layer: K=1 partitioning is the unpartitioned path
    /// bit for bit, and a forced cut (against a deliberately shrunken
    /// device, since generated designs fit a real Stratix V whole) is a
    /// pure scheduling transform — outputs stay bitwise identical and
    /// the cycle count grows by exactly the plan's link cycles, under
    /// both simulation backends.
    pub(crate) fn check_partition(
        &self,
        spec: &DesignSpec,
        design: &Design,
        v: &mut Vec<Violation>,
    ) {
        let fpga = &self.platform.fpga;
        let mp = MultiFpgaPlatform::from_platform(&self.platform, 4);

        let whole = elaborate(design, fpga);
        let p1 = partition(design, fpga, &mp.link, 1);
        if !p1.is_single() || !p1.channels.is_empty() || p1.partitions[0].net != whole {
            v.push(Violation {
                invariant: "partition-identity",
                detail: format!(
                    "K=1 plan is not the unpartitioned elaboration \
                     (single={}, channels={})",
                    p1.is_single(),
                    p1.channels.len()
                ),
            });
        }

        let (x, y) = spec.inputs();
        let mut bindings = Bindings::new().bind("x", x);
        if spec.uses_second() {
            bindings = bindings.bind("y", y);
        }
        let base = match simulate(design, &self.platform, &bindings) {
            Ok(r) => r,
            // An unsimulatable design is already pinned by
            // `sim-vs-reference`; partitioned runs would only cascade.
            Err(_) => return,
        };
        match simulate_multi(Backend::Interp, design, &self.platform, 1, &bindings) {
            Ok(m) => {
                if m.devices_used != 1 || m.link_cycles != 0.0 {
                    v.push(Violation {
                        invariant: "partition-identity",
                        detail: format!(
                            "K=1 run reports {} devices and {} link cycles",
                            m.devices_used, m.link_cycles
                        ),
                    });
                }
                if let Some(diff) = base.bit_diff(&m.result) {
                    v.push(Violation {
                        invariant: "partition-identity",
                        detail: format!("K=1 multi-device run diverged from simulate: {diff}"),
                    });
                }
            }
            Err(e) => v.push(Violation {
                invariant: "partition-identity",
                detail: format!("K=1 multi-device simulation failed: {e}"),
            }),
        }

        // Force a real cut: shrink every capacity axis so the whole
        // design sits at ~2x the fit margin of one "device", then check
        // the partitioned run against the single-device reference.
        let u = util_proxy(&whole.raw, fpga);
        if !u.is_finite() || u <= 0.0 {
            return;
        }
        let scale = u / (2.0 * FIT_MARGIN);
        let shrink = |cap: u64| ((cap as f64 * scale).ceil() as u64).max(1);
        let tiny = FpgaTarget {
            alms: shrink(fpga.alms),
            dsps: shrink(fpga.dsps),
            brams: shrink(fpga.brams),
            ..fpga.clone()
        };
        let parts = partition(design, &tiny, &mp.link, mp.num_devices);
        let used = parts.devices_used();
        if used < 1 || used > mp.num_devices {
            v.push(Violation {
                invariant: "partition-sim",
                detail: format!("forced cut uses {used} of {} devices", mp.num_devices),
            });
        }
        for ch in &parts.channels {
            if ch.src == ch.dst || ch.src >= used || ch.dst >= used {
                v.push(Violation {
                    invariant: "partition-sim",
                    detail: format!(
                        "channel {} -> {} is not between distinct placed devices",
                        ch.src, ch.dst
                    ),
                });
            }
            if ch.words == 0 || ch.word_bits == 0 || ch.transfers == 0 {
                v.push(Violation {
                    invariant: "partition-sim",
                    detail: format!(
                        "channel {} -> {} carries no traffic (words={}, bits={}, transfers={})",
                        ch.src, ch.dst, ch.words, ch.word_bits, ch.transfers
                    ),
                });
            }
        }
        let link_cycles = parts.link_cycles(&mp.link);
        if !link_cycles.is_finite() || link_cycles < 0.0 {
            v.push(Violation {
                invariant: "partition-sim",
                detail: format!("plan link cycles are not sane: {link_cycles}"),
            });
        }
        let interp = match simulate_partitioned(Backend::Interp, design, &mp, &parts, &bindings) {
            Ok(m) => m,
            Err(e) => {
                v.push(Violation {
                    invariant: "partition-sim",
                    detail: format!("partitioned simulation failed: {e}"),
                });
                return;
            }
        };
        let outputs_match = match (base.output("out"), interp.output("out")) {
            (Ok(a), Ok(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            _ => false,
        };
        if !outputs_match {
            v.push(Violation {
                invariant: "partition-sim",
                detail: "a cut changed functional outputs (must be a pure scheduling transform)"
                    .to_string(),
            });
        }
        if interp.link_cycles.to_bits() != link_cycles.to_bits()
            || interp.result.cycles.to_bits() != (base.cycles + link_cycles).to_bits()
        {
            v.push(Violation {
                invariant: "partition-sim",
                detail: format!(
                    "cycle accounting: base {} + link {} != partitioned {} (reported link {})",
                    base.cycles, link_cycles, interp.result.cycles, interp.link_cycles
                ),
            });
        }
        // The tape backend must refuse-and-fall-back, never miscompile:
        // its partitioned result is bit-identical to the interpreter's.
        match simulate_partitioned(Backend::Tape, design, &mp, &parts, &bindings) {
            Ok(tape) => {
                if let Some(diff) = interp.result.bit_diff(&tape.result) {
                    v.push(Violation {
                        invariant: "partition-sim",
                        detail: format!("tape backend diverged on a partitioned run: {diff}"),
                    });
                }
                if tape.link_cycles.to_bits() != interp.link_cycles.to_bits() {
                    v.push(Violation {
                        invariant: "partition-sim",
                        detail: format!(
                            "tape link cycles {} != interpreter link cycles {}",
                            tape.link_cycles, interp.link_cycles
                        ),
                    });
                }
            }
            Err(e) => v.push(Violation {
                invariant: "partition-sim",
                detail: format!("tape backend failed on a partitioned run: {e}"),
            }),
        }
    }

    pub(crate) fn check_params(
        &self,
        space: &ParamSpace,
        values: &ParamValues,
        v: &mut Vec<Violation>,
    ) {
        if !space.is_legal(values) {
            v.push(Violation {
                invariant: "paramspace-legal",
                detail: format!("sampled values {values} are illegal in their own space"),
            });
        }
        for def in space.defs() {
            let Some(val) = values.get(&def.name) else {
                v.push(Violation {
                    invariant: "paramspace-legal",
                    detail: format!("parameter `{}` was never sampled", def.name),
                });
                continue;
            };
            if !def.kind.legal_values().contains(&val) {
                v.push(Violation {
                    invariant: "paramspace-legal",
                    detail: format!("`{}` = {val} is not among the legal values", def.name),
                });
            }
        }
    }
}

pub(crate) fn compare_bits(result: &SimResult, expected: &[f64], v: &mut Vec<Violation>) {
    let got = match result.output("out") {
        Ok(g) => g,
        Err(e) => {
            v.push(Violation {
                invariant: "sim-vs-reference",
                detail: format!("missing `out` array: {e}"),
            });
            return;
        }
    };
    if got.len() != expected.len() {
        v.push(Violation {
            invariant: "sim-vs-reference",
            detail: format!("`out` length {} != reference {}", got.len(), expected.len()),
        });
        return;
    }
    for (i, (g, e)) in got.iter().zip(expected).enumerate() {
        if g.to_bits() != e.to_bits() {
            v.push(Violation {
                invariant: "sim-vs-reference",
                detail: format!(
                    "`out`[{i}] = {g} ({:#x}), reference {e} ({:#x})",
                    g.to_bits(),
                    e.to_bits()
                ),
            });
            return; // one mismatch pins the case; the rest is noise
        }
    }
}

fn estimate_is_sane(est: &Estimate) -> bool {
    est.cycles.is_finite()
        && est.cycles > 0.0
        && [est.area.alms, est.area.regs, est.area.dsps, est.area.brams]
            .iter()
            .all(|x| x.is_finite() && *x >= 0.0)
}

fn estimates_bit_equal(a: &Estimate, b: &Estimate) -> bool {
    a.cycles.to_bits() == b.cycles.to_bits()
        && a.area.alms.to_bits() == b.area.alms.to_bits()
        && a.area.regs.to_bits() == b.area.regs.to_bits()
        && a.area.dsps.to_bits() == b.area.dsps.to_bits()
        && a.area.brams.to_bits() == b.area.brams.to_bits()
}
