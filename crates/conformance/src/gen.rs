//! Seeded generation of arbitrary *legal* DHDL designs.
//!
//! The generator draws a [`DesignSpec`] — a small metaprogram AST — and
//! instantiates it through [`dhdl_core::DesignBuilder`], so every emitted
//! design passes the builder's structural validation by construction:
//! nested Sequential/Pipe/MetaPipe controllers, tile loads/stores,
//! register reductions with cross-tile folds, mixed datatypes, and
//! parameter values sampled from a randomized [`ParamSpace`] instance.
//!
//! A spec is also *evaluable*: [`DesignSpec::reference`] computes the
//! design's outputs with a plain-Rust mirror of the simulator's
//! quantization semantics, giving the oracle an independent functional
//! reference for every generated design — not just the hand benchmarks.
//! Specs serialize to a one-line text form (corpus persistence) and
//! shrink structurally (see [`crate::shrink()`]).

use dhdl_core::{
    by, DType, Design, DesignBuilder, NodeId, ParamKind, ParamSpace, ParamValues, PrimOp, ReduceOp,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The right-hand operand of a datapath step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A literal constant (pre-quantized to the design dtype).
    Lit(f64),
    /// The matching element of the second input array `y`.
    Second,
    /// The pipe's local iteration index.
    Index,
}

/// One step of a generated elementwise kernel chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MapStep {
    /// `v = op(v, rhs)` for a binary arithmetic primitive.
    Bin {
        /// The primitive (Add/Sub/Mul/Min/Max).
        op: PrimOp,
        /// The right-hand operand.
        rhs: Operand,
    },
    /// `v = op(v)` for a unary primitive (Abs/Neg/Sqrt).
    Un {
        /// The primitive.
        op: PrimOp,
    },
    /// `v = v < thresh ? v : rhs` — a predicate plus mux.
    Select {
        /// Comparison threshold (pre-quantized).
        thresh: f64,
        /// The mux's other arm.
        rhs: Operand,
    },
}

impl MapStep {
    fn uses_second(&self) -> bool {
        matches!(
            self,
            MapStep::Bin {
                rhs: Operand::Second,
                ..
            } | MapStep::Select {
                rhs: Operand::Second,
                ..
            }
        )
    }
}

/// A generated design metaprogram: a tiled elementwise kernel with an
/// optional second stage and an optional cross-tile reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpec {
    /// Case identity (drives naming and input data).
    pub case_id: u64,
    /// Element datatype of the whole datapath.
    pub ty: DType,
    /// Total input length.
    pub n: u64,
    /// Tile size (divides `n`; sampled from a `ParamSpace`).
    pub tile: u64,
    /// Inner pipe parallelism (divides `tile`).
    pub par: u32,
    /// Tile-transfer parallelism.
    pub load_par: u32,
    /// Outer tile loop is a MetaPipe (true) or Sequential (false).
    pub metapipe: bool,
    /// Wrap the compute pipes in a nested Sequential controller
    /// (map kernels only).
    pub nested_seq: bool,
    /// Issue the two input tile loads under a Parallel controller.
    pub parallel_loads: bool,
    /// First elementwise stage.
    pub stage1: Vec<MapStep>,
    /// Optional second stage (empty = single stage).
    pub stage2: Vec<MapStep>,
    /// Cross-tile reduction; `None` makes a map kernel with a full
    ///-length output.
    pub reduce: Option<ReduceOp>,
}

impl DesignSpec {
    /// Whether any step reads the second input array.
    pub fn uses_second(&self) -> bool {
        self.stage1
            .iter()
            .chain(&self.stage2)
            .any(MapStep::uses_second)
    }

    /// The design name (stable per case).
    pub fn name(&self) -> String {
        format!("fz{:x}", self.case_id)
    }

    /// Instantiate the spec through `DesignBuilder`.
    ///
    /// # Errors
    ///
    /// Propagates builder validation errors (a generator bug: the oracle
    /// reports any failure here as a violation).
    pub fn build(&self) -> dhdl_core::Result<Design> {
        let ty = self.ty;
        let n = self.n;
        let tile = self.tile;
        let mut b = DesignBuilder::new(self.name());
        let x = b.off_chip("x", ty, &[n]);
        let y = self.uses_second().then(|| b.off_chip("y", ty, &[n]));
        let out_len = if self.reduce.is_some() { 1 } else { n };
        let out = b.off_chip("out", ty, &[out_len]);
        b.sequential(|b| match self.reduce {
            Some(op) => {
                let acc = b.reg("acc", ty, 0.0);
                b.outer_fold(self.metapipe, &[by(n, tile)], 1, acc, op, |b, iters| {
                    let i = iters[0];
                    let (xt, yt) = self.load_tiles(b, x, y, i);
                    let partial = b.reg("partial", ty, 0.0);
                    if self.stage2.is_empty() {
                        b.pipe_reduce(&[by(tile, 1)], self.par, partial, op, |b, it| {
                            let v = b.load(xt, &[it[0]]);
                            self.emit_chain(b, &self.stage1, v, yt, it[0])
                        });
                    } else {
                        let wt = b.bram("wt", ty, &[tile]);
                        b.pipe(&[by(tile, 1)], self.par, |b, it| {
                            let v = b.load(xt, &[it[0]]);
                            let v = self.emit_chain(b, &self.stage1, v, yt, it[0]);
                            b.store(wt, &[it[0]], v);
                        });
                        b.pipe_reduce(&[by(tile, 1)], self.par, partial, op, |b, it| {
                            let v = b.load(wt, &[it[0]]);
                            self.emit_chain(b, &self.stage2, v, yt, it[0])
                        });
                    }
                    partial
                });
                let ot = b.bram("ot", ty, &[1]);
                b.pipe(&[by(1, 1)], 1, |b, it| {
                    let a = b.load_reg(acc);
                    b.store(ot, &[it[0]], a);
                });
                let z = b.index_const(0);
                b.tile_store(out, ot, &[z], &[1], 1);
            }
            None => {
                b.outer(self.metapipe, &[by(n, tile)], 1, |b, iters| {
                    let i = iters[0];
                    let (xt, yt) = self.load_tiles(b, x, y, i);
                    let st = b.bram("st", ty, &[tile]);
                    let compute = |b: &mut DesignBuilder| {
                        if self.stage2.is_empty() {
                            b.pipe(&[by(tile, 1)], self.par, |b, it| {
                                let v = b.load(xt, &[it[0]]);
                                let v = self.emit_chain(b, &self.stage1, v, yt, it[0]);
                                b.store(st, &[it[0]], v);
                            });
                        } else {
                            let wt = b.bram("wt", ty, &[tile]);
                            b.pipe(&[by(tile, 1)], self.par, |b, it| {
                                let v = b.load(xt, &[it[0]]);
                                let v = self.emit_chain(b, &self.stage1, v, yt, it[0]);
                                b.store(wt, &[it[0]], v);
                            });
                            b.pipe(&[by(tile, 1)], self.par, |b, it| {
                                let v = b.load(wt, &[it[0]]);
                                let v = self.emit_chain(b, &self.stage2, v, yt, it[0]);
                                b.store(st, &[it[0]], v);
                            });
                        }
                    };
                    if self.nested_seq {
                        b.sequential(compute);
                    } else {
                        compute(b);
                    }
                    b.tile_store(out, st, &[i], &[tile], self.load_par);
                });
            }
        });
        b.finish()
    }

    fn load_tiles(
        &self,
        b: &mut DesignBuilder,
        x: NodeId,
        y: Option<NodeId>,
        i: NodeId,
    ) -> (NodeId, Option<NodeId>) {
        let xt = b.bram("xt", self.ty, &[self.tile]);
        let yt = y.map(|_| b.bram("yt", self.ty, &[self.tile]));
        match (y, yt, self.parallel_loads) {
            (Some(y), Some(yt), true) => {
                b.parallel(|b| {
                    b.tile_load(x, xt, &[i], &[self.tile], self.load_par);
                    b.tile_load(y, yt, &[i], &[self.tile], self.load_par);
                });
            }
            (Some(y), Some(yt), false) => {
                b.tile_load(x, xt, &[i], &[self.tile], self.load_par);
                b.tile_load(y, yt, &[i], &[self.tile], self.load_par);
            }
            _ => {
                b.tile_load(x, xt, &[i], &[self.tile], self.load_par);
            }
        }
        (xt, yt)
    }

    fn emit_operand(
        &self,
        b: &mut DesignBuilder,
        rhs: Operand,
        yt: Option<NodeId>,
        it: NodeId,
    ) -> NodeId {
        match rhs {
            Operand::Lit(c) => b.constant(c, self.ty),
            Operand::Second => {
                let yt = yt.expect("Second operand implies a y tile");
                b.load(yt, &[it])
            }
            Operand::Index => it,
        }
    }

    fn emit_chain(
        &self,
        b: &mut DesignBuilder,
        steps: &[MapStep],
        v0: NodeId,
        yt: Option<NodeId>,
        it: NodeId,
    ) -> NodeId {
        let mut v = v0;
        for step in steps {
            v = match *step {
                MapStep::Bin { op, rhs } => {
                    let r = self.emit_operand(b, rhs, yt, it);
                    b.prim(op, &[v, r])
                }
                MapStep::Un { op } => b.prim(op, &[v]),
                MapStep::Select { thresh, rhs } => {
                    let t = b.constant(thresh, self.ty);
                    let sel = b.prim(PrimOp::Lt, &[v, t]);
                    let r = self.emit_operand(b, rhs, yt, it);
                    b.mux(sel, v, r)
                }
            };
        }
        v
    }

    /// Deterministic input data for this case, pre-quantized to the
    /// design dtype (matching what the datapath would observe anyway).
    pub fn inputs(&self) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(self.case_id ^ 0xDA7A_5EED);
        let mut draw = |len: u64| -> Vec<f64> {
            (0..len)
                .map(|_| {
                    self.ty
                        .quantize(f64::from(rng.gen_range(-40i32..=40)) * 0.25)
                })
                .collect()
        };
        let x = draw(self.n);
        let y = draw(self.n);
        (x, y)
    }

    fn ref_operand(&self, rhs: Operand, yv: f64, it: u64) -> f64 {
        match rhs {
            // A Const node is quantized to its declared type at read.
            Operand::Lit(c) => self.ty.quantize(c),
            Operand::Second => yv,
            Operand::Index => it as f64,
        }
    }

    fn ref_chain(&self, steps: &[MapStep], v0: f64, yv: f64, it: u64) -> f64 {
        let ty = self.ty;
        let mut v = v0;
        for step in steps {
            v = match *step {
                MapStep::Bin { op, rhs } => {
                    ty.quantize(ref_apply(op, v, self.ref_operand(rhs, yv, it)))
                }
                MapStep::Un { op } => ty.quantize(ref_apply(op, v, 0.0)),
                MapStep::Select { thresh, rhs } => {
                    let t = ty.quantize(thresh);
                    // Lt is a Bool node (0/1), then the mux re-quantizes.
                    let sel = v < t;
                    ty.quantize(if sel {
                        v
                    } else {
                        self.ref_operand(rhs, yv, it)
                    })
                }
            };
        }
        v
    }

    /// The expected `out` array: an independent plain-Rust evaluation
    /// mirroring the simulator's per-node quantization semantics.
    pub fn reference(&self, x: &[f64], y: &[f64]) -> Vec<f64> {
        let ty = self.ty;
        let tiles = self.n / self.tile;
        match self.reduce {
            None => {
                let mut out = vec![0.0; self.n as usize];
                for t in 0..tiles {
                    for i in 0..self.tile {
                        let g = (t * self.tile + i) as usize;
                        // Load quantizes to the BRAM's type.
                        let xv = ty.quantize(x[g]);
                        let yv = ty.quantize(y[g]);
                        let mut v = self.ref_chain(&self.stage1, xv, yv, i);
                        if !self.stage2.is_empty() {
                            // Store + reload through the staging BRAM.
                            v = ty.quantize(v);
                            v = self.ref_chain(&self.stage2, ty.quantize(v), yv, i);
                        }
                        out[g] = ty.quantize(v);
                    }
                }
                out
            }
            Some(op) => {
                let mut acc = op.identity();
                for t in 0..tiles {
                    let mut partial = op.identity();
                    for i in 0..self.tile {
                        let g = (t * self.tile + i) as usize;
                        let xv = ty.quantize(x[g]);
                        let yv = ty.quantize(y[g]);
                        let mut v = self.ref_chain(&self.stage1, xv, yv, i);
                        if !self.stage2.is_empty() {
                            v = self.ref_chain(&self.stage2, ty.quantize(v), yv, i);
                        }
                        partial = ty.quantize(op.apply(partial, v));
                    }
                    // The implicit fold stage accumulates the tile's
                    // partial into the outer register.
                    acc = ty.quantize(op.apply(acc, partial));
                }
                // Write-back pipe stores through a unit BRAM.
                vec![ty.quantize(acc)]
            }
        }
    }

    /// The randomized parameter-space instance this spec was sampled
    /// from (tile/par/toggle), for legality cross-checks.
    pub fn param_space(&self) -> ParamSpace {
        let mut space = ParamSpace::new();
        space.tile("ts", self.n, 2, 64.min(self.n));
        space.par("ip", self.tile, 8);
        space.toggle("mp");
        space
    }

    /// The parameter values this instance was built with.
    pub fn param_values(&self) -> ParamValues {
        ParamValues::new()
            .with("ts", self.tile)
            .with("ip", u64::from(self.par))
            .with("mp", u64::from(self.metapipe))
    }
}

/// Reference semantics of the primitive subset the generator emits —
/// mirrors the simulator's `apply_prim` for those ops.
fn ref_apply(op: PrimOp, a: f64, b: f64) -> f64 {
    match op {
        PrimOp::Add => a + b,
        PrimOp::Sub => a - b,
        PrimOp::Mul => a * b,
        PrimOp::Min => a.min(b),
        PrimOp::Max => a.max(b),
        PrimOp::Abs => a.abs(),
        PrimOp::Neg => -a,
        PrimOp::Sqrt => a.sqrt(),
        other => panic!("generator never emits {other:?}"),
    }
}

const BIN_OPS: [PrimOp; 5] = [
    PrimOp::Add,
    PrimOp::Sub,
    PrimOp::Mul,
    PrimOp::Min,
    PrimOp::Max,
];

fn gen_lit(rng: &mut StdRng, ty: DType) -> f64 {
    ty.quantize(f64::from(rng.gen_range(-12i32..=12)) * 0.5)
}

fn gen_operand(rng: &mut StdRng, ty: DType) -> Operand {
    match rng.gen_range(0u32..10) {
        0..=4 => Operand::Lit(gen_lit(rng, ty)),
        5..=7 => Operand::Second,
        // Iterator nodes are index-typed; mixing them into arithmetic
        // only preserves the design dtype for float datapaths (type
        // promotion prefers floats).
        _ if ty.is_float() => Operand::Index,
        _ => Operand::Lit(gen_lit(rng, ty)),
    }
}

fn gen_steps(rng: &mut StdRng, ty: DType, max_len: usize) -> Vec<MapStep> {
    let len = rng.gen_range(0usize..=max_len);
    (0..len)
        .map(|_| match rng.gen_range(0u32..10) {
            0..=5 => MapStep::Bin {
                op: BIN_OPS[rng.gen_range(0usize..BIN_OPS.len())],
                rhs: gen_operand(rng, ty),
            },
            6..=7 => MapStep::Un {
                op: if rng.gen_bool(0.5) {
                    PrimOp::Abs
                } else {
                    PrimOp::Neg
                },
            },
            8 if ty.is_float() => MapStep::Un { op: PrimOp::Sqrt },
            _ => MapStep::Select {
                thresh: gen_lit(rng, ty),
                rhs: gen_operand(rng, ty),
            },
        })
        .collect()
}

/// Generate the spec for fuzz case `case_id` under `master_seed`.
///
/// Deterministic: the same `(master_seed, case_id)` always yields the
/// same spec, independent of any other case.
pub fn generate(master_seed: u64, case_id: u64) -> DesignSpec {
    let mut rng = StdRng::seed_from_u64(
        master_seed ^ case_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC04F_0B5E,
    );
    let n = [64u64, 96, 128, 192, 256, 384, 512][rng.gen_range(0usize..7)];
    let ty = match rng.gen_range(0u32..10) {
        0..=4 => DType::F32,
        5..=6 => DType::F64,
        7..=8 => DType::fixed(true, 15, 8),
        _ => DType::fixed(true, 23, 4),
    };
    // Sample the tile from a randomized ParamSpace instance, and the
    // parallelism from the dependent Par kind.
    let mut space = ParamSpace::new();
    space.tile("ts", n, 2, 64.min(n));
    let tiles = space.defs()[0].kind.legal_values();
    let tile = tiles[rng.gen_range(0usize..tiles.len())];
    let pars = ParamKind::Par {
        divides: tile,
        max: 8,
    }
    .legal_values();
    let par = pars[rng.gen_range(0usize..pars.len())] as u32;
    let stage1 = gen_steps(&mut rng, ty, 3);
    let stage2 = if rng.gen_bool(0.4) {
        gen_steps(&mut rng, ty, 2)
    } else {
        Vec::new()
    };
    let reduce = if rng.gen_bool(0.4) {
        Some(match rng.gen_range(0u32..4) {
            0..=1 => ReduceOp::Add,
            2 => ReduceOp::Min,
            _ => ReduceOp::Max,
        })
    } else {
        None
    };
    let metapipe = rng.gen_bool(0.5);
    let nested_seq = reduce.is_none() && rng.gen_bool(0.3);
    let mut spec = DesignSpec {
        case_id,
        ty,
        n,
        tile,
        par,
        load_par: [1u32, 2, 4][rng.gen_range(0usize..3)],
        metapipe,
        nested_seq,
        parallel_loads: rng.gen_bool(0.5),
        stage1,
        stage2,
        reduce,
    };
    spec.parallel_loads &= spec.uses_second();
    spec
}
