//! Greedy structural shrinking of failing fuzz cases.
//!
//! The vendored proptest is deterministic but does not shrink, so the
//! harness shrinks itself: starting from a failing [`DesignSpec`], try a
//! fixed menu of simplifications (drop the reduction, drop datapath
//! steps, clear controller flags, lower parallelism, shrink sizes,
//! collapse the dtype to F32) and keep any candidate that still violates
//! the *same* invariant. Repeats to a fixpoint with a hard iteration cap
//! so a pathological oracle cannot loop forever.

use crate::dnn::{DnnKind, DnnSpec};
use crate::gen::{DesignSpec, MapStep};
use crate::oracle::Conformance;
use crate::patgen::{PatRhs, PatternSpec};

/// Upper bound on accepted shrink steps (safety net; real cases converge
/// in far fewer).
const MAX_ROUNDS: usize = 64;

fn still_fails(conf: &Conformance, spec: &DesignSpec, invariant: &str) -> bool {
    conf.check_design(spec)
        .iter()
        .any(|v| v.invariant == invariant)
}

/// Make `spec` self-consistent after a structural edit: parallelism must
/// divide the (possibly shrunk) tile, the tile must divide `n`, and
/// parallel loads require a second input.
fn normalize(spec: &mut DesignSpec) {
    if spec.n % spec.tile != 0 {
        spec.tile = 2;
    }
    if u64::from(spec.par) > spec.tile || spec.tile % u64::from(spec.par) != 0 {
        spec.par = 1;
    }
    if u64::from(spec.load_par) > spec.tile || spec.tile % u64::from(spec.load_par) != 0 {
        spec.load_par = 1;
    }
    spec.parallel_loads &= spec.uses_second();
}

/// Candidate one-step simplifications of a design spec, in decreasing
/// order of how much structure they remove.
fn candidates(spec: &DesignSpec) -> Vec<DesignSpec> {
    let mut out = Vec::new();
    let mut push = |mut s: DesignSpec| {
        normalize(&mut s);
        out.push(s);
    };
    if spec.reduce.is_some() {
        let mut s = spec.clone();
        s.reduce = None;
        push(s);
    }
    if !spec.stage2.is_empty() {
        let mut s = spec.clone();
        s.stage2.clear();
        push(s);
    }
    for i in 0..spec.stage1.len() {
        let mut s = spec.clone();
        s.stage1.remove(i);
        push(s);
    }
    for i in 0..spec.stage2.len() {
        let mut s = spec.clone();
        s.stage2.remove(i);
        push(s);
    }
    // Replace structured steps with the simplest binary step.
    for (stage_idx, steps) in [&spec.stage1, &spec.stage2].into_iter().enumerate() {
        for (i, step) in steps.iter().enumerate() {
            if matches!(step, MapStep::Select { .. } | MapStep::Un { .. }) {
                let mut s = spec.clone();
                let stage = if stage_idx == 0 {
                    &mut s.stage1
                } else {
                    &mut s.stage2
                };
                stage[i] = MapStep::Bin {
                    op: dhdl_core::PrimOp::Add,
                    rhs: crate::gen::Operand::Lit(1.0),
                };
                push(s);
            }
        }
    }
    for flag in 0..3 {
        let mut s = spec.clone();
        let changed = match flag {
            0 => std::mem::take(&mut s.metapipe),
            1 => std::mem::take(&mut s.nested_seq),
            _ => std::mem::take(&mut s.parallel_loads),
        };
        if changed {
            push(s);
        }
    }
    if spec.par > 1 {
        let mut s = spec.clone();
        s.par = 1;
        push(s);
    }
    if spec.load_par > 1 {
        let mut s = spec.clone();
        s.load_par = 1;
        push(s);
    }
    if spec.tile > 2 {
        for t in [2, spec.tile / 2] {
            if t >= 2 && t < spec.tile && spec.n % t == 0 {
                let mut s = spec.clone();
                s.tile = t;
                push(s);
            }
        }
    }
    if spec.n > 64 {
        for n in [64, spec.n / 2] {
            if n < spec.n && n % spec.tile == 0 {
                let mut s = spec.clone();
                s.n = n;
                push(s);
            }
        }
    }
    if spec.ty != dhdl_core::DType::F32 {
        let mut s = spec.clone();
        s.ty = dhdl_core::DType::F32;
        push(s);
    }
    out
}

/// Greedily shrink a failing design spec while preserving the violated
/// invariant. Returns the smallest spec found (possibly the input).
pub fn shrink(conf: &Conformance, spec: &DesignSpec, invariant: &str) -> DesignSpec {
    let mut best = spec.clone();
    for _ in 0..MAX_ROUNDS {
        let mut improved = false;
        for cand in candidates(&best) {
            if cand != best && still_fails(conf, &cand, invariant) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    best
}

fn dnn_still_fails(conf: &Conformance, spec: &DnnSpec, invariant: &str) -> bool {
    conf.check_dnn(spec)
        .iter()
        .any(|v| v.invariant == invariant)
}

/// Make a DNN spec self-consistent after a structural edit: the tile
/// must divide the (possibly shrunk) row dimension and the parallelisms
/// must divide their bases.
fn dnn_normalize(spec: &mut DnnSpec) {
    let rows = match spec.kind {
        // Valid 3x3 convolution: hout = size - 2.
        DnnKind::Conv => spec.size - 2,
        DnnKind::Attn => spec.size,
    };
    if spec.tile < 2 || spec.tile > rows || rows % spec.tile != 0 {
        spec.tile = 2;
    }
    match spec.kind {
        DnnKind::Conv => {
            // par lanes vectorize over wout (== hout for square images);
            // par2 replicates over output channels.
            if rows % u64::from(spec.par) != 0 {
                spec.par = 1;
            }
            if spec.cout % u64::from(spec.par2) != 0 {
                spec.par2 = 1;
            }
        }
        DnnKind::Attn => {
            if spec.par > 8 || 32 % spec.par != 0 {
                spec.par = 1;
            }
            if spec.par2 > 4 || 32 % spec.par2 != 0 {
                spec.par2 = 1;
            }
        }
    }
}

/// Candidate one-step simplifications of a DNN fragment spec, in
/// decreasing order of how much structure they remove.
fn dnn_candidates(spec: &DnnSpec) -> Vec<DnnSpec> {
    let mut out = Vec::new();
    let mut push = |mut s: DnnSpec| {
        dnn_normalize(&mut s);
        out.push(s);
    };
    let min_size = match spec.kind {
        DnnKind::Conv => 6,
        DnnKind::Attn => 4,
    };
    if spec.size > min_size {
        let mut s = *spec;
        s.size = min_size;
        push(s);
    }
    if spec.kind == DnnKind::Conv && spec.cout > 2 {
        let mut s = *spec;
        s.cout = 2;
        push(s);
    }
    for flag in 0..2 {
        let mut s = *spec;
        let changed = match flag {
            0 => std::mem::take(&mut s.metapipe),
            _ => std::mem::take(&mut s.metapipe2),
        };
        if changed {
            push(s);
        }
    }
    if spec.par > 1 {
        let mut s = *spec;
        s.par = 1;
        push(s);
    }
    if spec.par2 > 1 {
        let mut s = *spec;
        s.par2 = 1;
        push(s);
    }
    if spec.tile > 2 {
        let mut s = *spec;
        s.tile = 2;
        push(s);
    }
    out
}

/// Greedily shrink a failing DNN fragment spec while preserving the
/// violated invariant. Returns the smallest spec found.
pub fn shrink_dnn(conf: &Conformance, spec: &DnnSpec, invariant: &str) -> DnnSpec {
    let mut best = *spec;
    for _ in 0..MAX_ROUNDS {
        let mut improved = false;
        for cand in dnn_candidates(&best) {
            if cand != best && dnn_still_fails(conf, &cand, invariant) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    best
}

fn pattern_still_fails(conf: &Conformance, spec: &PatternSpec, invariant: &str) -> bool {
    conf.check_pattern(spec)
        .iter()
        .any(|v| v.invariant == invariant)
}

fn pattern_candidates(spec: &PatternSpec) -> Vec<PatternSpec> {
    let mut out = Vec::new();
    if spec.reduce.is_some() && !spec.steps.is_empty() {
        let mut s = spec.clone();
        s.reduce = None;
        out.push(s);
    }
    let min_steps = usize::from(spec.reduce.is_none());
    if spec.steps.len() > min_steps {
        for i in 0..spec.steps.len() {
            let mut s = spec.clone();
            s.steps.remove(i);
            out.push(s);
        }
    }
    if spec.two_inputs {
        let mut s = spec.clone();
        s.two_inputs = false;
        for step in &mut s.steps {
            if step.rhs == PatRhs::In1 {
                step.rhs = PatRhs::In0;
            }
        }
        out.push(s);
    }
    if spec.len > 64 {
        let mut s = spec.clone();
        s.len = 64;
        out.push(s);
    }
    out
}

/// Greedily shrink a failing pattern spec, preserving the invariant.
pub fn shrink_pattern(conf: &Conformance, spec: &PatternSpec, invariant: &str) -> PatternSpec {
    let mut best = spec.clone();
    for _ in 0..MAX_ROUNDS {
        let mut improved = false;
        for cand in pattern_candidates(&best) {
            if cand != best && pattern_still_fails(conf, &cand, invariant) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    best
}
