//! Seeded generation of parallel-pattern programs and their
//! frontend-level differential checks.
//!
//! Where [`crate::gen`] fuzzes raw DHDL structure, this module fuzzes
//! the `dhdl-patterns` frontend: random map chains with an optional
//! terminal reduction, checked three ways —
//!
//! - `fuse-semantics`: interpreting the fused program must match the
//!   unfused interpretation bit-for-bit (fusion only removes
//!   materialization; every node still quantizes identically),
//! - `pattern-sim-vs-interp`: lowering to DHDL and simulating must match
//!   the interpreter within the frontend's documented tolerance, for
//!   randomly sampled *legal* parameters (both fused and unfused),
//! - `pattern-build`: lowering never fails on a legal program/parameter
//!   combination.

use std::collections::BTreeMap;

use dhdl_core::{DType, PrimOp, ReduceOp};
use dhdl_patterns::{fuse, lower, param_space, Expr, PatternProgram};
use dhdl_sim::{simulate, Bindings};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::oracle::{Conformance, Violation};

/// Relative tolerance for simulator-vs-interpreter comparison — matches
/// the `patterns_e2e` integration suite.
const SIM_TOL: f64 = 1e-4;

/// The right-hand side of one pattern map step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PatRhs {
    /// A literal constant.
    Lit(f64),
    /// The primary input array element.
    In0,
    /// The second input array element (two-input programs only).
    In1,
}

/// One map step: `cur = op(cur, rhs)` as a standalone `map` pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatStep {
    /// The binary primitive.
    pub op: PrimOp,
    /// The right-hand operand.
    pub rhs: PatRhs,
}

/// A generated pattern-frontend program: a chain of single-op maps with
/// an optional terminal reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternSpec {
    /// Case identity (drives naming, data and parameter sampling).
    pub case_id: u64,
    /// Input array length.
    pub len: u64,
    /// Whether a second input array `b` exists.
    pub two_inputs: bool,
    /// The map chain (at least one step unless `reduce` is set).
    pub steps: Vec<PatStep>,
    /// Optional terminal reduction.
    pub reduce: Option<ReduceOp>,
}

impl PatternSpec {
    /// Build the `PatternProgram` for this spec. The final op is always
    /// named `out`; intermediates are `m0`, `m1`, ….
    pub fn program(&self) -> PatternProgram {
        let mut p = PatternProgram::new();
        let a = p.input("a", self.len, DType::F32);
        let b = self.two_inputs.then(|| p.input("b", self.len, DType::F32));
        let mut cur = a;
        let last_map = self.steps.len().checked_sub(1);
        for (i, step) in self.steps.iter().enumerate() {
            let name = if Some(i) == last_map && self.reduce.is_none() {
                "out".to_string()
            } else {
                format!("m{i}")
            };
            let (ins, rhs) = match step.rhs {
                PatRhs::Lit(c) => (vec![cur], Expr::lit(c)),
                PatRhs::In0 => (vec![cur, a], Expr::input(1)),
                PatRhs::In1 => {
                    let b = b.expect("In1 implies a two-input program");
                    (vec![cur, b], Expr::input(1))
                }
            };
            cur = p.map(&name, &ins, Expr::bin(step.op, Expr::input(0), rhs));
        }
        if let Some(op) = self.reduce {
            p.reduce("out", &[cur], Expr::input(0), op);
        }
        p
    }

    /// Deterministic input arrays for this case (pre-quantized to F32).
    pub fn inputs(&self) -> BTreeMap<String, Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(self.case_id ^ 0x5EED_DA7A);
        let mut draw = || -> Vec<f64> {
            (0..self.len)
                .map(|_| DType::F32.quantize(f64::from(rng.gen_range(-32i32..=32)) * 0.125))
                .collect()
        };
        let a = draw();
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), a);
        if self.two_inputs {
            m.insert("b".to_string(), draw());
        }
        m
    }
}

const PAT_OPS: [PrimOp; 5] = [
    PrimOp::Add,
    PrimOp::Sub,
    PrimOp::Mul,
    PrimOp::Min,
    PrimOp::Max,
];

/// Generate the pattern spec for fuzz case `case_id` under `master_seed`.
///
/// Deterministic and independent per `(master_seed, case_id)`.
pub fn generate_pattern(master_seed: u64, case_id: u64) -> PatternSpec {
    let mut rng = StdRng::seed_from_u64(
        master_seed ^ case_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x7A77_E271,
    );
    let len = [64u64, 128, 256][rng.gen_range(0usize..3)];
    let two_inputs = rng.gen_bool(0.5);
    let reduce = if rng.gen_bool(0.4) {
        Some(match rng.gen_range(0u32..4) {
            0..=1 => ReduceOp::Add,
            2 => ReduceOp::Min,
            _ => ReduceOp::Max,
        })
    } else {
        None
    };
    let min_steps = usize::from(reduce.is_none());
    let n_steps = rng.gen_range(min_steps..=3);
    let steps = (0..n_steps)
        .map(|_| PatStep {
            op: PAT_OPS[rng.gen_range(0usize..PAT_OPS.len())],
            rhs: match rng.gen_range(0u32..10) {
                0..=4 => {
                    PatRhs::Lit(DType::F32.quantize(f64::from(rng.gen_range(-12i32..=12)) * 0.5))
                }
                5..=7 if two_inputs => PatRhs::In1,
                _ => PatRhs::In0,
            },
        })
        .collect();
    PatternSpec {
        case_id,
        len,
        two_inputs,
        steps,
        reduce,
    }
}

impl Conformance {
    /// Run the pattern-frontend invariants for one generated spec.
    pub fn check_pattern(&self, spec: &PatternSpec) -> Vec<Violation> {
        let mut v = Vec::new();
        let prog = spec.program();
        let inputs = spec.inputs();
        let plain = prog.interpret(&inputs);
        let fused = fuse(&prog);
        let fused_out = fused.interpret(&inputs);
        match (plain.get("out"), fused_out.get("out")) {
            (Some(a), Some(b)) => {
                let same =
                    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
                if !same {
                    v.push(Violation {
                        invariant: "fuse-semantics",
                        detail: "fused interpretation diverged from unfused".to_string(),
                    });
                }
            }
            _ => v.push(Violation {
                invariant: "fuse-semantics",
                detail: "interpreter lost the `out` array".to_string(),
            }),
        }
        self.check_lowered(spec, &prog, &inputs, &plain, "unfused", &mut v);
        self.check_lowered(spec, &fused, &inputs, &fused_out, "fused", &mut v);
        v
    }

    fn check_lowered(
        &self,
        spec: &PatternSpec,
        prog: &PatternProgram,
        inputs: &BTreeMap<String, Vec<f64>>,
        expected: &BTreeMap<String, Vec<f64>>,
        label: &str,
        v: &mut Vec<Violation>,
    ) {
        // Sample *legal* parameters, seeded per case (and per op count,
        // so fused and unfused draws differ but stay deterministic).
        let space = param_space(prog);
        let mut rng =
            StdRng::seed_from_u64(spec.case_id ^ (prog.ops().len() as u64) << 32 ^ 0xBEA7);
        let mut params = dhdl_core::ParamValues::new();
        for def in space.defs() {
            let legal = def.kind.legal_values();
            params.set(&def.name, legal[rng.gen_range(0usize..legal.len())]);
        }
        let name = format!("pz{:x}_{label}", spec.case_id);
        let design = match lower(prog, &name, &params) {
            Ok(d) => d,
            Err(e) => {
                v.push(Violation {
                    invariant: "pattern-build",
                    detail: format!("{label} lowering failed with legal params {params}: {e}"),
                });
                return;
            }
        };
        // Bind only arrays the lowered design declares: an input the
        // program never reads (a legal spec) has no off-chip memory,
        // and the simulator rejects bindings that match nothing.
        let mut bindings = Bindings::new();
        for (k, data) in inputs {
            let declared = design
                .offchips()
                .iter()
                .any(|&off| design.node(off).name.as_deref() == Some(k.as_str()));
            if declared {
                bindings = bindings.bind(k, data.clone());
            }
        }
        let result = match simulate(&design, self.platform(), &bindings) {
            Ok(r) => r,
            Err(e) => {
                v.push(Violation {
                    invariant: "pattern-sim-vs-interp",
                    detail: format!("{label} simulation failed: {e}"),
                });
                return;
            }
        };
        for off in design.offchips() {
            let Some(arr) = design.node(*off).name.clone() else {
                continue;
            };
            let Some(exp) = expected.get(&arr) else {
                continue; // inputs have no interpreter output
            };
            let got = match result.output(&arr) {
                Ok(g) => g,
                Err(e) => {
                    v.push(Violation {
                        invariant: "pattern-sim-vs-interp",
                        detail: format!("{label}: {e}"),
                    });
                    continue;
                }
            };
            if got.len() != exp.len() {
                v.push(Violation {
                    invariant: "pattern-sim-vs-interp",
                    detail: format!(
                        "{label}: `{arr}` length {} != interpreter {}",
                        got.len(),
                        exp.len()
                    ),
                });
                continue;
            }
            for (i, (g, e)) in got.iter().zip(exp).enumerate() {
                if (g - e).abs() > SIM_TOL * e.abs().max(1.0) {
                    v.push(Violation {
                        invariant: "pattern-sim-vs-interp",
                        detail: format!(
                            "{label}: `{arr}`[{i}] = {g}, interpreter says {e} (params {params})"
                        ),
                    });
                    break;
                }
            }
        }
    }
}
