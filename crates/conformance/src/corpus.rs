//! Replayable corpus persistence.
//!
//! Every fuzz case — a [`DesignSpec`] or a [`PatternSpec`] — serializes
//! to a single self-contained text line (floats as IEEE-754 bit
//! patterns, so round-trips are exact). Failing cases are shrunk and
//! written to `tests/corpus/*.case`; a corpus file is:
//!
//! ```text
//! dhdl-fuzz case v1
//! invariant=<name or `none` for seed cases>
//! design v1 case=... ty=... n=... ...
//! ```
//!
//! Replaying a corpus directory re-runs the full oracle on each case and
//! must produce zero violations once the underlying bug is fixed (seed
//! cases pin the no-violation baseline from day one).

use std::fs;
use std::path::{Path, PathBuf};

use dhdl_core::{DType, PrimOp, ReduceOp};

use crate::dnn::{DnnKind, DnnSpec};
use crate::gen::{DesignSpec, MapStep, Operand};
use crate::oracle::{Conformance, Violation};
use crate::patgen::{PatRhs, PatStep, PatternSpec};

/// The corpus file header line.
pub const HEADER: &str = "dhdl-fuzz case v1";

/// One persisted fuzz case.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusCase {
    /// The invariant this case violated when captured (`none` for seed
    /// cases that pin the passing baseline).
    pub invariant: String,
    /// The payload spec.
    pub kind: CaseKind,
}

/// The kinds of generated specs a corpus can hold.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseKind {
    /// A raw DHDL design spec.
    Design(DesignSpec),
    /// A pattern-frontend spec.
    Pattern(PatternSpec),
    /// A DNN-shaped fragment spec (conv2d/attention).
    Dnn(DnnSpec),
}

impl CorpusCase {
    /// The canonical file name for this case.
    pub fn file_name(&self) -> String {
        match &self.kind {
            CaseKind::Design(s) => format!("{}-d{:016x}.case", self.invariant, s.case_id),
            CaseKind::Pattern(s) => format!("{}-p{:016x}.case", self.invariant, s.case_id),
            CaseKind::Dnn(s) => format!("{}-n{:016x}.case", self.invariant, s.case_id),
        }
    }

    /// Render the whole case file.
    pub fn to_text(&self) -> String {
        let line = match &self.kind {
            CaseKind::Design(s) => design_to_line(s),
            CaseKind::Pattern(s) => pattern_to_line(s),
            CaseKind::Dnn(s) => dnn_to_line(s),
        };
        format!("{HEADER}\ninvariant={}\n{line}\n", self.invariant)
    }

    /// Parse a case file.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<CorpusCase, String> {
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(format!("missing `{HEADER}` header"));
        }
        let inv = lines
            .next()
            .and_then(|l| l.strip_prefix("invariant="))
            .ok_or("missing `invariant=` line")?;
        let spec = lines.next().ok_or("missing spec line")?;
        let kind = if spec.starts_with("design v1 ") {
            CaseKind::Design(design_from_line(spec)?)
        } else if spec.starts_with("pattern v1 ") {
            CaseKind::Pattern(pattern_from_line(spec)?)
        } else if spec.starts_with("dnn v1 ") {
            CaseKind::Dnn(dnn_from_line(spec)?)
        } else {
            return Err(format!("unrecognized spec line: {spec}"));
        };
        Ok(CorpusCase {
            invariant: inv.to_string(),
            kind,
        })
    }

    /// Run the oracle on this case.
    pub fn check(&self, conf: &Conformance) -> Vec<Violation> {
        match &self.kind {
            CaseKind::Design(s) => conf.check_design(s),
            CaseKind::Pattern(s) => conf.check_pattern(s),
            CaseKind::Dnn(s) => conf.check_dnn(s),
        }
    }
}

/// Write a case into `dir`, returning the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_case(dir: &Path, case: &CorpusCase) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(case.file_name());
    fs::write(&path, case.to_text())?;
    Ok(path)
}

/// Load every `*.case` file in `dir`, sorted by file name (so replay
/// order — and therefore output — is deterministic).
///
/// # Errors
///
/// Returns a description of the first unreadable or malformed file.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusCase)>, String> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text = fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            let case = CorpusCase::from_text(&text).map_err(|e| format!("{}: {e}", p.display()))?;
            Ok((p, case))
        })
        .collect()
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn f64_from_hex(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad float bits `{s}`: {e}"))
}

fn ty_text(ty: DType) -> String {
    match ty {
        DType::F32 => "f32".to_string(),
        DType::F64 => "f64".to_string(),
        DType::Bool => "bool".to_string(),
        DType::Fix { sign, int, frac } => {
            format!("fix:{}:{int}:{frac}", u8::from(sign))
        }
    }
}

fn ty_parse(s: &str) -> Result<DType, String> {
    match s {
        "f32" => Ok(DType::F32),
        "f64" => Ok(DType::F64),
        "bool" => Ok(DType::Bool),
        other => {
            let parts: Vec<&str> = other.split(':').collect();
            if parts.len() == 4 && parts[0] == "fix" {
                let sign = parts[1] == "1";
                let int = parts[2].parse().map_err(|_| "bad int bits")?;
                let frac = parts[3].parse().map_err(|_| "bad frac bits")?;
                Ok(DType::fixed(sign, int, frac))
            } else {
                Err(format!("unrecognized dtype `{other}`"))
            }
        }
    }
}

fn prim_text(op: PrimOp) -> &'static str {
    match op {
        PrimOp::Add => "Add",
        PrimOp::Sub => "Sub",
        PrimOp::Mul => "Mul",
        PrimOp::Min => "Min",
        PrimOp::Max => "Max",
        PrimOp::Abs => "Abs",
        PrimOp::Neg => "Neg",
        PrimOp::Sqrt => "Sqrt",
        other => unreachable!("generator never emits {other:?}"),
    }
}

fn prim_parse(s: &str) -> Result<PrimOp, String> {
    Ok(match s {
        "Add" => PrimOp::Add,
        "Sub" => PrimOp::Sub,
        "Mul" => PrimOp::Mul,
        "Min" => PrimOp::Min,
        "Max" => PrimOp::Max,
        "Abs" => PrimOp::Abs,
        "Neg" => PrimOp::Neg,
        "Sqrt" => PrimOp::Sqrt,
        other => return Err(format!("unrecognized primitive `{other}`")),
    })
}

fn reduce_text(op: Option<ReduceOp>) -> &'static str {
    match op {
        None => "-",
        Some(ReduceOp::Add) => "Add",
        Some(ReduceOp::Min) => "Min",
        Some(ReduceOp::Max) => "Max",
    }
}

fn reduce_parse(s: &str) -> Result<Option<ReduceOp>, String> {
    Ok(match s {
        "-" => None,
        "Add" => Some(ReduceOp::Add),
        "Min" => Some(ReduceOp::Min),
        "Max" => Some(ReduceOp::Max),
        other => return Err(format!("unrecognized reduce op `{other}`")),
    })
}

fn operand_text(o: Operand) -> String {
    match o {
        Operand::Lit(c) => format!("l:{}", f64_hex(c)),
        Operand::Second => "y".to_string(),
        Operand::Index => "i".to_string(),
    }
}

fn operand_parse(s: &str) -> Result<Operand, String> {
    match s {
        "y" => Ok(Operand::Second),
        "i" => Ok(Operand::Index),
        other => match other.strip_prefix("l:") {
            Some(bits) => Ok(Operand::Lit(f64_from_hex(bits)?)),
            None => Err(format!("unrecognized operand `{other}`")),
        },
    }
}

fn steps_text(steps: &[MapStep]) -> String {
    if steps.is_empty() {
        return "-".to_string();
    }
    steps
        .iter()
        .map(|s| match s {
            MapStep::Bin { op, rhs } => format!("bin:{}:{}", prim_text(*op), operand_text(*rhs)),
            MapStep::Un { op } => format!("un:{}", prim_text(*op)),
            MapStep::Select { thresh, rhs } => {
                format!("sel:{}:{}", f64_hex(*thresh), operand_text(*rhs))
            }
        })
        .collect::<Vec<_>>()
        .join(";")
}

fn steps_parse(s: &str) -> Result<Vec<MapStep>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(';')
        .map(|item| {
            let mut parts = item.splitn(2, ':');
            let tag = parts.next().unwrap_or("");
            let rest = parts.next().unwrap_or("");
            match tag {
                "bin" => {
                    let (op, rhs) = rest
                        .split_once(':')
                        .ok_or_else(|| format!("malformed bin step `{item}`"))?;
                    Ok(MapStep::Bin {
                        op: prim_parse(op)?,
                        rhs: operand_parse(rhs)?,
                    })
                }
                "un" => Ok(MapStep::Un {
                    op: prim_parse(rest)?,
                }),
                "sel" => {
                    let (thresh, rhs) = rest
                        .split_once(':')
                        .ok_or_else(|| format!("malformed sel step `{item}`"))?;
                    Ok(MapStep::Select {
                        thresh: f64_from_hex(thresh)?,
                        rhs: operand_parse(rhs)?,
                    })
                }
                other => Err(format!("unrecognized step tag `{other}`")),
            }
        })
        .collect()
}

/// Render a design spec as its one-line corpus form.
pub fn design_to_line(s: &DesignSpec) -> String {
    format!(
        "design v1 case={:x} ty={} n={} tile={} par={} lp={} mp={} seq={} plo={} s1={} s2={} red={}",
        s.case_id,
        ty_text(s.ty),
        s.n,
        s.tile,
        s.par,
        s.load_par,
        u8::from(s.metapipe),
        u8::from(s.nested_seq),
        u8::from(s.parallel_loads),
        steps_text(&s.stage1),
        steps_text(&s.stage2),
        reduce_text(s.reduce),
    )
}

fn fields_of(line: &str, kind: &str) -> Result<Vec<(String, String)>, String> {
    let body = line
        .strip_prefix(&format!("{kind} v1 "))
        .ok_or_else(|| format!("not a `{kind} v1` line"))?;
    body.split_whitespace()
        .map(|field| {
            field
                .split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .ok_or_else(|| format!("malformed field `{field}`"))
        })
        .collect()
}

fn get<'a>(fields: &'a [(String, String)], key: &str) -> Result<&'a str, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| format!("missing field `{key}`"))
}

fn num<T: std::str::FromStr>(fields: &[(String, String)], key: &str) -> Result<T, String> {
    get(fields, key)?
        .parse()
        .map_err(|_| format!("bad numeric field `{key}`"))
}

/// Parse a design spec from its one-line corpus form.
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn design_from_line(line: &str) -> Result<DesignSpec, String> {
    let fields = fields_of(line, "design")?;
    Ok(DesignSpec {
        case_id: u64::from_str_radix(get(&fields, "case")?, 16)
            .map_err(|_| "bad case id".to_string())?,
        ty: ty_parse(get(&fields, "ty")?)?,
        n: num(&fields, "n")?,
        tile: num(&fields, "tile")?,
        par: num(&fields, "par")?,
        load_par: num(&fields, "lp")?,
        metapipe: get(&fields, "mp")? == "1",
        nested_seq: get(&fields, "seq")? == "1",
        parallel_loads: get(&fields, "plo")? == "1",
        stage1: steps_parse(get(&fields, "s1")?)?,
        stage2: steps_parse(get(&fields, "s2")?)?,
        reduce: reduce_parse(get(&fields, "red")?)?,
    })
}

/// Render a DNN fragment spec as its one-line corpus form.
pub fn dnn_to_line(s: &DnnSpec) -> String {
    let kind = match s.kind {
        DnnKind::Conv => "conv",
        DnnKind::Attn => "attn",
    };
    format!(
        "dnn v1 case={:x} kind={kind} size={} cout={} tile={} par={} par2={} mp={} mp2={}",
        s.case_id,
        s.size,
        s.cout,
        s.tile,
        s.par,
        s.par2,
        u8::from(s.metapipe),
        u8::from(s.metapipe2),
    )
}

/// Parse a DNN fragment spec from its one-line corpus form.
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn dnn_from_line(line: &str) -> Result<DnnSpec, String> {
    let fields = fields_of(line, "dnn")?;
    let kind = match get(&fields, "kind")? {
        "conv" => DnnKind::Conv,
        "attn" => DnnKind::Attn,
        other => return Err(format!("unrecognized dnn kind `{other}`")),
    };
    Ok(DnnSpec {
        case_id: u64::from_str_radix(get(&fields, "case")?, 16)
            .map_err(|_| "bad case id".to_string())?,
        kind,
        size: num(&fields, "size")?,
        cout: num(&fields, "cout")?,
        tile: num(&fields, "tile")?,
        par: num(&fields, "par")?,
        par2: num(&fields, "par2")?,
        metapipe: get(&fields, "mp")? == "1",
        metapipe2: get(&fields, "mp2")? == "1",
    })
}

fn pat_rhs_text(r: PatRhs) -> String {
    match r {
        PatRhs::Lit(c) => format!("l:{}", f64_hex(c)),
        PatRhs::In0 => "in0".to_string(),
        PatRhs::In1 => "in1".to_string(),
    }
}

fn pat_rhs_parse(s: &str) -> Result<PatRhs, String> {
    match s {
        "in0" => Ok(PatRhs::In0),
        "in1" => Ok(PatRhs::In1),
        other => match other.strip_prefix("l:") {
            Some(bits) => Ok(PatRhs::Lit(f64_from_hex(bits)?)),
            None => Err(format!("unrecognized pattern rhs `{other}`")),
        },
    }
}

/// Render a pattern spec as its one-line corpus form.
pub fn pattern_to_line(s: &PatternSpec) -> String {
    let steps = if s.steps.is_empty() {
        "-".to_string()
    } else {
        s.steps
            .iter()
            .map(|st| format!("{}:{}", prim_text(st.op), pat_rhs_text(st.rhs)))
            .collect::<Vec<_>>()
            .join(";")
    };
    format!(
        "pattern v1 case={:x} len={} two={} steps={} red={}",
        s.case_id,
        s.len,
        u8::from(s.two_inputs),
        steps,
        reduce_text(s.reduce),
    )
}

/// Parse a pattern spec from its one-line corpus form.
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn pattern_from_line(line: &str) -> Result<PatternSpec, String> {
    let fields = fields_of(line, "pattern")?;
    let steps_field = get(&fields, "steps")?;
    let steps = if steps_field == "-" {
        Vec::new()
    } else {
        steps_field
            .split(';')
            .map(|item| {
                let (op, rhs) = item
                    .split_once(':')
                    .ok_or_else(|| format!("malformed pattern step `{item}`"))?;
                Ok(PatStep {
                    op: prim_parse(op)?,
                    rhs: pat_rhs_parse(rhs)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?
    };
    Ok(PatternSpec {
        case_id: u64::from_str_radix(get(&fields, "case")?, 16)
            .map_err(|_| "bad case id".to_string())?,
        len: num(&fields, "len")?,
        two_inputs: get(&fields, "two")? == "1",
        steps,
        reduce: reduce_parse(get(&fields, "red")?)?,
    })
}
