//! Generative differential-conformance harness for DHDL.
//!
//! This crate fuzzes the whole toolchain with *legal* generated designs
//! and cross-checks every layer against an independent oracle:
//!
//! - **Functional**: simulator output vs. a plain-Rust reference
//!   evaluator that mirrors the simulator's quantization semantics
//!   bit-for-bit, plus `patterns`-level interpreter and `dhdl-cpu`
//!   kernel differentials where a reference exists.
//! - **Structural**: full `elaborate` vs. skeleton+recost netlists,
//!   `structural_hash`/serialize round-trip stability.
//! - **Model**: estimator finiteness, monotonicity-in-parallelism,
//!   capacity bounds vs. `dhdl-synth`, and `EstimateCache`
//!   hit-equals-miss bit-identity.
//!
//! Failures auto-shrink (greedy structural reduction; the vendored
//! proptest does not shrink) and persist as replayable cases under
//! `tests/corpus/`. The `dhdl-fuzz` binary is the entry point:
//!
//! ```text
//! cargo run -p dhdl-conformance --bin dhdl-fuzz -- --designs 500 --seed 0
//! ```

#![warn(missing_docs)]

pub mod apps;
pub mod corpus;
pub mod dnn;
pub mod gen;
pub mod oracle;
pub mod patgen;
pub mod shrink;

pub use corpus::{CaseKind, CorpusCase};
pub use dnn::{generate_dnn, DnnKind, DnnSpec};
pub use gen::{generate, DesignSpec, MapStep, Operand};
pub use oracle::{Conformance, Violation};
pub use patgen::{generate_pattern, PatternSpec};
pub use shrink::{shrink, shrink_dnn, shrink_pattern};
