//! `dhdl-fuzz` — the differential-conformance fuzzing entry point.
//!
//! Default mode generates `--designs` design specs, `--patterns`
//! pattern specs and `--dnn` DNN-shaped fragments (conv2d/attention)
//! from `--seed`, runs the full layered oracle on each,
//! greedily shrinks any failure, persists it as a replayable case under
//! `--out` (default `tests/corpus`), and finishes with the benchmark
//! differentials. Stdout is byte-deterministic for a fixed seed: all
//! timing goes to stderr.
//!
//! `--replay DIR` instead re-runs the oracle over every `*.case` file in
//! `DIR` (sorted), which is how CI pins the corpus. `--emit-corpus DIR`
//! writes the standard seed corpus. `--budget-ms T` time-boxes the fuzz
//! loops (for CI smoke jobs; cases are never cut short mid-oracle).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use dhdl_conformance::corpus::{load_dir, write_case, CaseKind, CorpusCase};
use dhdl_conformance::{
    generate, generate_dnn, generate_pattern, shrink, shrink_dnn, shrink_pattern, Conformance,
    Violation,
};

struct Args {
    designs: u64,
    patterns: u64,
    dnn: u64,
    seed: u64,
    budget_ms: Option<u64>,
    replay: Option<PathBuf>,
    emit_corpus: Option<PathBuf>,
    out: PathBuf,
    skip_benches: bool,
}

const USAGE: &str = "usage: dhdl-fuzz [--designs N] [--patterns N] [--dnn N] [--seed S] \
[--budget-ms T] [--replay DIR] [--emit-corpus DIR] [--out DIR] [--skip-benches]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        designs: 200,
        patterns: 50,
        dnn: 25,
        seed: 0,
        budget_ms: None,
        replay: None,
        emit_corpus: None,
        out: PathBuf::from("tests/corpus"),
        skip_benches: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--designs" => args.designs = parse_num(&value("--designs")?)?,
            "--patterns" => args.patterns = parse_num(&value("--patterns")?)?,
            "--dnn" => args.dnn = parse_num(&value("--dnn")?)?,
            "--seed" => args.seed = parse_num(&value("--seed")?)?,
            "--budget-ms" => args.budget_ms = Some(parse_num(&value("--budget-ms")?)?),
            "--replay" => args.replay = Some(PathBuf::from(value("--replay")?)),
            "--emit-corpus" => args.emit_corpus = Some(PathBuf::from(value("--emit-corpus")?)),
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--skip-benches" => args.skip_benches = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unrecognized flag `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("invalid number `{s}`"))
}

fn print_violations(kind: &str, line: &str, violations: &[Violation]) {
    for v in violations {
        println!("FAIL {kind} {line}");
        println!("  {v}");
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    dhdl_obs::init_from_env();
    let start = Instant::now();
    eprintln!("dhdl-fuzz: calibrating estimator...");
    let conf = Conformance::new();
    eprintln!("dhdl-fuzz: ready in {:.1}s", start.elapsed().as_secs_f64());

    if let Some(dir) = &args.replay {
        let code = replay(&conf, dir);
        dhdl_obs::finish("dhdl-fuzz");
        return code;
    }
    if let Some(dir) = &args.emit_corpus {
        return emit_corpus(&conf, dir, args.seed);
    }

    let budget = args.budget_ms.map(std::time::Duration::from_millis);
    let out_of_time = |done: u64, what: &str| -> bool {
        let over = budget.is_some_and(|b| start.elapsed() > b);
        if over {
            println!("budget exhausted after {done} {what}");
        }
        over
    };

    let mut total_violations = 0usize;
    let mut designs_run = 0u64;
    for case_id in 0..args.designs {
        if out_of_time(case_id, "designs") {
            break;
        }
        let spec = generate(args.seed, case_id);
        let violations = conf.check_design(&spec);
        if !violations.is_empty() {
            total_violations += violations.len();
            let invariant = violations[0].invariant;
            let small = shrink(&conf, &spec, invariant);
            let case = CorpusCase {
                invariant: invariant.to_string(),
                kind: CaseKind::Design(small),
            };
            print_violations(
                "design",
                &dhdl_conformance::corpus::design_to_line(&spec),
                &violations,
            );
            persist(&args.out, &case);
        }
        designs_run += 1;
        if case_id % 50 == 49 {
            eprintln!(
                "dhdl-fuzz: {} designs in {:.1}s",
                case_id + 1,
                start.elapsed().as_secs_f64()
            );
        }
    }
    println!("designs: {designs_run} checked");

    let mut patterns_run = 0u64;
    for case_id in 0..args.patterns {
        if out_of_time(case_id, "patterns") {
            break;
        }
        let spec = generate_pattern(args.seed, case_id);
        let violations = conf.check_pattern(&spec);
        if !violations.is_empty() {
            total_violations += violations.len();
            let invariant = violations[0].invariant;
            let small = shrink_pattern(&conf, &spec, invariant);
            let case = CorpusCase {
                invariant: invariant.to_string(),
                kind: CaseKind::Pattern(small),
            };
            print_violations(
                "pattern",
                &dhdl_conformance::corpus::pattern_to_line(&spec),
                &violations,
            );
            persist(&args.out, &case);
        }
        patterns_run += 1;
    }
    println!("patterns: {patterns_run} checked");

    let mut dnn_run = 0u64;
    for case_id in 0..args.dnn {
        if out_of_time(case_id, "dnn fragments") {
            break;
        }
        let spec = generate_dnn(args.seed, case_id);
        let violations = conf.check_dnn(&spec);
        if !violations.is_empty() {
            total_violations += violations.len();
            let invariant = violations[0].invariant;
            let small = shrink_dnn(&conf, &spec, invariant);
            let case = CorpusCase {
                invariant: invariant.to_string(),
                kind: CaseKind::Dnn(small),
            };
            print_violations(
                "dnn",
                &dhdl_conformance::corpus::dnn_to_line(&spec),
                &violations,
            );
            persist(&args.out, &case);
        }
        dnn_run += 1;
    }
    println!("dnn: {dnn_run} checked");

    let mut benches_run = 0u64;
    if !args.skip_benches && !out_of_time(0, "benchmarks") {
        for bench in dhdl_conformance::apps::default_benchmarks() {
            let violations = conf.check_benchmark(bench.as_ref());
            total_violations += violations.len();
            print_violations("bench", bench.name(), &violations);
            benches_run += 1;
        }
    }
    println!("benchmarks: {benches_run} checked");
    println!("violations: {total_violations}");
    eprintln!("dhdl-fuzz: done in {:.1}s", start.elapsed().as_secs_f64());
    dhdl_obs::finish("dhdl-fuzz");
    if total_violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn persist(dir: &Path, case: &CorpusCase) {
    match write_case(dir, case) {
        Ok(path) => println!("  shrunk case written to {}", path.display()),
        Err(e) => eprintln!("dhdl-fuzz: failed to persist case: {e}"),
    }
}

fn replay(conf: &Conformance, dir: &Path) -> ExitCode {
    let cases = match load_dir(dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dhdl-fuzz: replay failed: {e}");
            return ExitCode::from(2);
        }
    };
    let mut total = 0usize;
    for (path, case) in &cases {
        let violations = case.check(conf);
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if violations.is_empty() {
            println!("replay {name}: ok");
        } else {
            total += violations.len();
            println!("replay {name}: {} violations", violations.len());
            for v in &violations {
                println!("  {v}");
            }
        }
    }
    println!("replayed: {} cases, {total} violations", cases.len());
    if total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Seed the corpus with representative *passing* cases: they pin the
/// zero-violation baseline, the corpus file format, and the replay
/// plumbing from day one (shrunk failures join them if a bug appears).
fn emit_corpus(conf: &Conformance, dir: &Path, seed: u64) -> ExitCode {
    let mut cases = Vec::new();
    for case_id in 0..6 {
        cases.push(CorpusCase {
            invariant: "none".to_string(),
            kind: CaseKind::Design(generate(seed, case_id)),
        });
    }
    for case_id in 0..4 {
        cases.push(CorpusCase {
            invariant: "none".to_string(),
            kind: CaseKind::Pattern(generate_pattern(seed, case_id)),
        });
    }
    // At least one conv and one attention seed case: `generate_dnn`
    // alternates kinds pseudo-randomly, so take the first of each.
    let mut kinds_seen = std::collections::BTreeSet::new();
    for case_id in 0..16 {
        let spec = generate_dnn(seed, case_id);
        if kinds_seen.insert(format!("{:?}", spec.kind)) {
            cases.push(CorpusCase {
                invariant: "none".to_string(),
                kind: CaseKind::Dnn(spec),
            });
        }
        if kinds_seen.len() == 2 {
            break;
        }
    }
    for case in &cases {
        let violations = case.check(conf);
        if !violations.is_empty() {
            eprintln!(
                "dhdl-fuzz: refusing to emit a failing seed case ({} violations)",
                violations.len()
            );
            for v in &violations {
                eprintln!("  {v}");
            }
            return ExitCode::FAILURE;
        }
        match write_case(dir, case) {
            Ok(path) => println!("emitted {}", path.display()),
            Err(e) => {
                eprintln!("dhdl-fuzz: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("emitted: {} cases", cases.len());
    ExitCode::SUCCESS
}
