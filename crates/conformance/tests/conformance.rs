//! Unit and property tests for the conformance harness itself: generator
//! determinism and diversity, corpus serialization round-trips, shrinker
//! invariant preservation, and a mini fuzz campaign (the full campaign
//! is the `dhdl-fuzz` binary; CI replays `tests/corpus/` on top).

use dhdl_conformance::corpus::{
    design_from_line, design_to_line, dnn_from_line, dnn_to_line, pattern_from_line,
    pattern_to_line, CorpusCase,
};
use dhdl_conformance::{
    generate, generate_dnn, generate_pattern, shrink, shrink_dnn, CaseKind, Conformance, DnnKind,
};
use proptest::prelude::*;

#[test]
fn generator_is_deterministic_and_diverse() {
    for id in 0..20 {
        assert_eq!(generate(42, id), generate(42, id));
        assert_eq!(generate_pattern(42, id), generate_pattern(42, id));
    }
    // Different case ids under one seed yield different specs (the spec
    // embeds its case id, so compare the structural payload).
    let mut shapes = std::collections::BTreeSet::new();
    for id in 0..20 {
        let s = generate(7, id);
        shapes.insert(format!(
            "{:?}|{}|{}|{}|{:?}|{:?}|{:?}",
            s.ty, s.n, s.tile, s.par, s.stage1, s.stage2, s.reduce
        ));
    }
    assert!(
        shapes.len() > 10,
        "generator collapsed: {} shapes",
        shapes.len()
    );
    // Different master seeds change the stream.
    assert_ne!(generate(0, 3).param_values(), generate(1, 3).param_values());
}

#[test]
fn generated_designs_build_and_have_legal_params() {
    for id in 0..40 {
        let spec = generate(99, id);
        let design = spec.build().unwrap_or_else(|e| panic!("case {id}: {e}"));
        assert!(design.offchips().len() >= 2, "case {id}: missing offchips");
        assert!(
            spec.param_space().is_legal(&spec.param_values()),
            "case {id}: illegal params"
        );
        assert_eq!(spec.n % spec.tile, 0, "case {id}: tile does not divide n");
        assert_eq!(
            spec.tile % u64::from(spec.par),
            0,
            "case {id}: par does not divide tile"
        );
    }
}

#[test]
fn dnn_generator_is_deterministic_and_covers_both_kinds() {
    let mut kinds = std::collections::BTreeSet::new();
    let mut shapes = std::collections::BTreeSet::new();
    for id in 0..24 {
        let spec = generate_dnn(42, id);
        assert_eq!(spec, generate_dnn(42, id));
        kinds.insert(format!("{:?}", spec.kind));
        shapes.insert(format!(
            "{:?}|{}|{}|{}|{}|{}",
            spec.kind, spec.size, spec.cout, spec.tile, spec.par, spec.par2
        ));
        // Every sampled point must be legal in the benchmark's own space
        // and instantiate through the builder.
        assert!(
            spec.param_space().is_legal(&spec.param_values()),
            "dnn case {id}: illegal params"
        );
        spec.build()
            .unwrap_or_else(|e| panic!("dnn case {id}: {e}"));
    }
    assert_eq!(kinds.len(), 2, "generator never drew one of the kinds");
    assert!(shapes.len() > 10, "dnn generator collapsed: {shapes:?}");
}

#[test]
fn corpus_case_files_roundtrip() {
    let design = CorpusCase {
        invariant: "sim-vs-reference".to_string(),
        kind: CaseKind::Design(generate(3, 17)),
    };
    let pattern = CorpusCase {
        invariant: "none".to_string(),
        kind: CaseKind::Pattern(generate_pattern(3, 17)),
    };
    let dnn = CorpusCase {
        invariant: "backend-differential".to_string(),
        kind: CaseKind::Dnn(generate_dnn(3, 17)),
    };
    for case in [design, pattern, dnn] {
        let text = case.to_text();
        let back = CorpusCase::from_text(&text).expect("case file parses");
        assert_eq!(back, case);
        // File names are stable and distinguish the two spec kinds.
        assert!(case.file_name().ends_with(".case"));
    }
}

#[test]
fn corpus_rejects_malformed_input() {
    assert!(CorpusCase::from_text("").is_err());
    assert!(CorpusCase::from_text("dhdl-fuzz case v1\n").is_err());
    assert!(CorpusCase::from_text("dhdl-fuzz case v1\ninvariant=x\njunk line\n").is_err());
    assert!(design_from_line("design v1 case=zz").is_err());
    assert!(design_from_line("pattern v1 case=0").is_err());
    assert!(dnn_from_line("dnn v1 case=0 kind=rnn size=8").is_err());
    assert!(dnn_from_line("dnn v1 case=0 kind=conv size=8").is_err());
    assert!(pattern_from_line("pattern v1 case=0 len=64 two=0 steps=Wat:in0 red=-").is_err());
    let good = design_to_line(&generate(0, 0));
    assert!(design_from_line(&good.replace("ty=", "ty=q")).is_err());
}

proptest! {
    /// Every generated spec survives the one-line corpus encoding
    /// exactly, including float literals (stored as IEEE-754 bits).
    #[test]
    fn corpus_lines_roundtrip_exactly(seed in 0u64..10_000, id in 0u64..128) {
        let spec = generate(seed, id);
        prop_assert_eq!(design_from_line(&design_to_line(&spec)).unwrap(), spec);
        let pat = generate_pattern(seed, id);
        prop_assert_eq!(pattern_from_line(&pattern_to_line(&pat)).unwrap(), pat);
        let dnn = generate_dnn(seed, id);
        prop_assert_eq!(dnn_from_line(&dnn_to_line(&dnn)).unwrap(), dnn);
    }
}

#[test]
fn mini_design_campaign_is_clean() {
    let conf = Conformance::new();
    for id in 0..15 {
        let spec = generate(0, id);
        let violations = conf.check_design(&spec);
        assert!(
            violations.is_empty(),
            "case {id} violated: {:?}",
            violations
        );
    }
}

#[test]
fn mini_pattern_campaign_is_clean() {
    let conf = Conformance::new();
    for id in 0..8 {
        let spec = generate_pattern(0, id);
        let violations = conf.check_pattern(&spec);
        assert!(
            violations.is_empty(),
            "pattern {id} violated: {:?}",
            violations
        );
    }
}

#[test]
fn mini_dnn_campaign_is_clean() {
    let conf = Conformance::new();
    for id in 0..6 {
        let spec = generate_dnn(0, id);
        let violations = conf.check_dnn(&spec);
        assert!(
            violations.is_empty(),
            "dnn case {id} violated: {violations:?}"
        );
    }
}

#[test]
fn dnn_shrinker_preserves_the_violated_invariant() {
    let conf = Conformance::new();
    // A tile below the space's minimum of 2 is buildable but violates
    // `paramspace-legal` (mirrors the design-spec shrink test).
    let mut spec = generate_dnn(0, 0);
    while spec.kind != DnnKind::Attn {
        spec = generate_dnn(0, spec.case_id + 1);
    }
    spec.size = 12;
    spec.tile = 1;
    spec.par = 1;
    spec.par2 = 1;
    let violations = conf.check_dnn(&spec);
    assert!(
        violations.iter().any(|v| v.invariant == "paramspace-legal"),
        "expected a paramspace violation, got {violations:?}"
    );
    let small = shrink_dnn(&conf, &spec, "paramspace-legal");
    let still = conf.check_dnn(&small);
    assert!(
        still.iter().any(|v| v.invariant == "paramspace-legal"),
        "shrinking lost the violated invariant"
    );
}

#[test]
fn dnn_reference_matches_simulator_bitwise_on_both_kinds() {
    use dhdl_sim::{simulate_compiled, Bindings};
    use dhdl_target::Platform;
    let platform = Platform::maia();
    let mut kinds = std::collections::BTreeSet::new();
    let mut id = 0;
    while kinds.len() < 2 && id < 32 {
        let spec = generate_dnn(5, id);
        id += 1;
        if !kinds.insert(format!("{:?}", spec.kind)) {
            continue;
        }
        let design = spec.build().expect("builds");
        let inputs = spec.inputs();
        let mut b = Bindings::new();
        for (name, data) in &inputs {
            b = b.bind(name, data.clone());
        }
        // The tape-backend entry point (falls back if unsupported).
        let result = simulate_compiled(&design, &platform, &b).expect("simulates");
        let got = result.output("out").expect("has out");
        let expected = spec.reference(&inputs);
        assert_eq!(got.len(), expected.len(), "{:?} length", spec.kind);
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(
                g.to_bits(),
                e.to_bits(),
                "{:?}: out[{i}] = {g} vs reference {e}",
                spec.kind
            );
        }
    }
    assert_eq!(kinds.len(), 2, "never drew both kinds in 32 cases");
}

#[test]
fn shrinker_preserves_the_violated_invariant() {
    let conf = Conformance::new();
    // A tile that does not divide its own parameter space's `divides`
    // bound is structurally buildable but violates `paramspace-legal`.
    let mut spec = generate(0, 5);
    spec.n = 64;
    spec.tile = 24;
    spec.par = 1;
    spec.load_par = 1;
    let violations = conf.check_design(&spec);
    assert!(
        violations.iter().any(|v| v.invariant == "paramspace-legal"),
        "expected a paramspace violation, got {violations:?}"
    );
    let small = shrink(&conf, &spec, "paramspace-legal");
    let still = conf.check_design(&small);
    assert!(
        still.iter().any(|v| v.invariant == "paramspace-legal"),
        "shrinking lost the violated invariant"
    );
}

#[test]
fn reference_evaluator_matches_simulator_bitwise() {
    use dhdl_sim::{simulate, Bindings};
    use dhdl_target::Platform;
    let platform = Platform::maia();
    for id in [0, 3, 9, 14] {
        let spec = generate(11, id);
        let design = spec.build().expect("builds");
        let (x, y) = spec.inputs();
        let mut b = Bindings::new().bind("x", x.clone());
        if spec.uses_second() {
            b = b.bind("y", y.clone());
        }
        let result = simulate(&design, &platform, &b).expect("simulates");
        let got = result.output("out").expect("has out");
        let expected = spec.reference(&x, &y);
        assert_eq!(got.len(), expected.len(), "case {id} length");
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(
                g.to_bits(),
                e.to_bits(),
                "case {id}: out[{i}] = {g} vs reference {e}"
            );
        }
    }
}

#[test]
fn partition_oracle_forced_cuts_are_not_vacuous() {
    // The `partition-sim` invariant forces a cut by shrinking the device
    // until the whole design overflows it; if the placer still returned
    // single-device plans the invariant would hold vacuously. Replicate
    // the oracle's shrink rule and confirm generated specs really split.
    use dhdl_synth::partition::{util_proxy, FIT_MARGIN};
    use dhdl_synth::{elaborate, partition};
    use dhdl_target::{FpgaTarget, MultiFpgaPlatform, Platform};
    let platform = Platform::maia();
    let fpga = &platform.fpga;
    let mp = MultiFpgaPlatform::from_platform(&platform, 4);
    let mut cut = 0;
    for id in 0..12u64 {
        let design = generate(0, id).build().expect("builds");
        let u = util_proxy(&elaborate(&design, fpga).raw, fpga);
        assert!(
            u.is_finite() && u > 0.0,
            "case {id}: degenerate utilization"
        );
        let scale = u / (2.0 * FIT_MARGIN);
        let shrink = |cap: u64| ((cap as f64 * scale).ceil() as u64).max(1);
        let tiny = FpgaTarget {
            alms: shrink(fpga.alms),
            dsps: shrink(fpga.dsps),
            brams: shrink(fpga.brams),
            ..fpga.clone()
        };
        if partition(&design, &tiny, &mp.link, mp.num_devices).devices_used() > 1 {
            cut += 1;
        }
    }
    assert!(
        cut >= 6,
        "only {cut}/12 specs were cut; the oracle barely fires"
    );
}
