//! Surrogate-guided design-space exploration (active learning).
//!
//! The paper's sweep evaluates up to 75 000 uniformly sampled points
//! (§IV-C); that is exhaustive but spends most of its budget on designs
//! that end up nowhere near the Pareto front. This module spends the same
//! budget adaptively: a small uniform seed batch trains a pair of
//! `dhdl-mlp` regressors (params → ln cycles, params → ln ALMs), every
//! unevaluated candidate in a fixed pool is scored by the *predicted
//! Pareto-hypervolume improvement* ([`crate::hypervolume`]) its estimate
//! would add to the current front, and the top-scoring batch — plus an
//! ε-greedy random tail so a mistrained surrogate cannot starve regions
//! of the space — is dispatched onto the same resilient runner as the
//! random sweep. Retraining after each batch closes the loop.
//!
//! Determinism and resume share one mechanism: the loop is a pure
//! function of `(seed, evaluated outcomes)`. Candidate pool order comes
//! from [`LegalSpace::sample`] (seeded), batch evaluation is keyed by
//! pool index (thread-count independent), training is full-batch RPROP
//! (deterministic), and the only randomness — the ε-greedy tail — comes
//! from a serializable SplitMix64 [`SurrogateRng`]. A resumed run
//! *replays* the loop from round zero: completed points come back
//! bit-exactly from the checkpoint, so every training set, every
//! acquisition score and every RNG draw is reproduced and the run
//! continues exactly where it stopped. The checkpoint additionally
//! records each round's RNG state and training-set size (`S` records) so
//! a replay that diverges — which can only mean foreign code or a doctored
//! file, since the header pins seed, budget and strategy tuning — is
//! detected and warned about instead of trusted silently.

use std::collections::BTreeMap;
use std::time::Instant;

use dhdl_core::{Design, ParamSpace, ParamValues};
use dhdl_mlp::{Regressor, TrainConfig};

use crate::checkpoint::{Checkpoint, SurrogateRound};
use crate::hypervolume::{improvement, reference_point, staircase};
use crate::pareto::pareto_front;
use crate::runner::{self, CostModel, OutcomeCounts, PointOutcome, SweepStats};
use crate::search::{point_tuples, DseOptions, DseResult, SurrogateConfig};
use crate::space::LegalSpace;

/// A minimal deterministic RNG for the acquisition loop's ε-greedy
/// draws: SplitMix64, whose entire state is one serializable `u64` (the
/// vendored `rand` subset exposes no state extraction, and the
/// checkpoint must record the RNG state per round).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SurrogateRng {
    state: u64,
}

impl SurrogateRng {
    pub(crate) fn new(seed: u64) -> Self {
        SurrogateRng {
            state: seed ^ 0x6A09_E667_F3BC_C909, // sqrt(2) bits, decorrelate from raw seed
        }
    }

    pub(crate) fn state(&self) -> u64 {
        self.state
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`. The modulo bias is ≤ n/2⁶⁴ — irrelevant
    /// for pool-sized `n`, and determinism matters more than perfection
    /// here.
    fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// The active-learning counterpart of `explore_random`, dispatched from
/// [`crate::explore`] when [`DseOptions::strategy`] is
/// [`crate::SearchStrategy::Surrogate`].
pub(crate) fn explore_surrogate<F, E>(
    build: &F,
    space: &ParamSpace,
    estimator: &E,
    opts: &DseOptions,
    cfg: &SurrogateConfig,
) -> DseResult
where
    F: Fn(&ParamValues) -> dhdl_core::Result<Design> + Sync,
    E: CostModel + ?Sized,
{
    let budget = opts.max_points;
    let _span = dhdl_obs::span_arg("dse.surrogate.explore", "budget", budget as u64);
    let legal = LegalSpace::new(space);
    // The fixed candidate pool. Indices into it are the checkpoint keys,
    // so its order must depend only on (space, seed, budget, tuning) —
    // `LegalSpace::sample` is seeded and single-threaded.
    let pool = legal.sample(budget.saturating_mul(cfg.pool_factor.max(1)), opts.seed);
    let param_names: Vec<String> = space.defs().iter().map(|d| d.name.clone()).collect();
    let deadline = opts.deadline.map(|d| Instant::now() + d);
    let checkpoint = opts.checkpoint.as_ref().and_then(|path| {
        match Checkpoint::open(path, space, opts, legal.size()) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("warning: checkpoint {} unavailable: {e}", path.display());
                None
            }
        }
    });

    let mut rng = SurrogateRng::new(opts.seed);
    // Pool indices not yet successfully evaluated or discarded, in pool
    // order (which is already a uniform shuffle of the space).
    let mut remaining: Vec<usize> = (0..pool.len()).collect();
    let mut evaluated: BTreeMap<usize, PointOutcome> = BTreeMap::new();
    let mut stats = SweepStats::default();
    let mut truncated = false;
    let mut attempted = 0usize;
    let mut round: u64 = 0;

    while attempted < budget && !remaining.is_empty() {
        let want = if round == 0 { cfg.init } else { cfg.batch }
            .max(1)
            .min(budget - attempted)
            .min(remaining.len());
        // Record (or verify, on resume) this round's replay state before
        // the selection below advances the RNG.
        let record = SurrogateRound {
            rng_state: rng.state(),
            train_len: evaluated.len(),
        };
        if let Some(ckpt) = &checkpoint {
            match ckpt.surrogate_round(round) {
                None => ckpt.append_surrogate_round(round, &record),
                Some(prev) if *prev == record => {}
                Some(prev) => {
                    eprintln!(
                        "warning: surrogate replay diverged from checkpoint at round {round} \
                         (recorded rng={:016x} train={}, replayed rng={:016x} train={}); \
                         results may not match the interrupted run",
                        prev.rng_state, prev.train_len, record.rng_state, record.train_len
                    );
                    dhdl_obs::counter!("checkpoint.surrogate_divergence").incr();
                }
            }
        }
        let batch: Vec<usize> = if round == 0 {
            // Seed round: the first pool entries are already a uniform
            // random draw from the legal space.
            remaining[..want].to_vec()
        } else {
            acquire_batch(
                &pool,
                &param_names,
                &evaluated,
                &remaining,
                want,
                cfg,
                &mut rng,
            )
        };
        dhdl_obs::histogram!("dse.surrogate.batch_size").record(batch.len() as u64);
        let items: Vec<(usize, &ParamValues)> = batch.iter().map(|&i| (i, &pool[i])).collect();
        let (outcomes, round_stats) = runner::evaluate_indexed(
            build,
            estimator,
            &items,
            opts,
            deadline,
            checkpoint.as_ref(),
        );
        stats.absorb(round_stats);
        let mut skipped = false;
        for (pos, outcome) in outcomes.into_iter().enumerate() {
            if matches!(outcome, PointOutcome::Skipped) {
                // Left unclaimed by the deadline: stays out of the
                // checkpoint, re-dispatched by a resumed run.
                skipped = true;
            } else {
                evaluated.insert(batch[pos], outcome);
                attempted += 1;
            }
        }
        remaining.retain(|i| !evaluated.contains_key(i));
        if skipped {
            truncated = true;
            break;
        }
        round += 1;
    }
    dhdl_obs::histogram!("dse.surrogate.rounds").record(round);

    if !truncated {
        if let Some(ckpt) = checkpoint {
            ckpt.remove();
        }
    }
    assemble(evaluated, budget, attempted, legal.size(), truncated, stats)
}

/// Select the next acquisition batch: train fresh surrogates on
/// everything evaluated so far, score every remaining candidate by
/// predicted hypervolume improvement, and take the best `want` — with an
/// ε-greedy random tail ([`SurrogateConfig::explore`]) drawn from the
/// rest. Falls back to pool order (uniform random) whenever there is
/// nothing to train on or no finite objective landscape to improve.
fn acquire_batch(
    pool: &[ParamValues],
    param_names: &[String],
    evaluated: &BTreeMap<usize, PointOutcome>,
    remaining: &[usize],
    want: usize,
    cfg: &SurrogateConfig,
    rng: &mut SurrogateRng,
) -> Vec<usize> {
    let points: Vec<&crate::DesignPoint> = evaluated
        .values()
        .filter_map(|o| match o {
            PointOutcome::Evaluated { point, .. } => Some(point),
            _ => None,
        })
        .collect();
    let scored = {
        let _span = dhdl_obs::span_arg(
            "dse.surrogate.acquire",
            "candidates",
            remaining.len() as u64,
        );
        dhdl_obs::counter!("dse.surrogate.acquire").incr();
        score_candidates(pool, param_names, &points, remaining, cfg)
    };
    let Some(mut scored) = scored else {
        return remaining[..want].to_vec();
    };
    // Exploit: best predicted improvement first, pool order on ties so
    // the split is total and thread-count independent.
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let n_explore = ((want as f64) * cfg.explore.clamp(0.0, 1.0)).round() as usize;
    let n_exploit = want - n_explore.min(want);
    let mut batch: Vec<usize> = scored[..n_exploit].iter().map(|&(i, _)| i).collect();
    // Explore: uniform draws from the unselected rest, visited in pool
    // order so the draw sequence is reproducible.
    let mut rest: Vec<usize> = scored[n_exploit..].iter().map(|&(i, _)| i).collect();
    rest.sort_unstable();
    while batch.len() < want && !rest.is_empty() {
        let j = rng.below(rest.len());
        batch.push(rest.swap_remove(j));
    }
    batch.sort_unstable();
    batch
}

/// Predicted hypervolume improvement for every remaining candidate, or
/// `None` when no surrogate can be trained (no evaluated points yet, or
/// a degenerate objective landscape).
fn score_candidates(
    pool: &[ParamValues],
    param_names: &[String],
    points: &[&crate::DesignPoint],
    remaining: &[usize],
    cfg: &SurrogateConfig,
) -> Option<Vec<(usize, f64)>> {
    if points.is_empty() {
        return None;
    }
    // Objectives live in log space throughout — the surrogates regress
    // ln(cycles)/ln(ALMs) (both span orders of magnitude) and the
    // hypervolume is taken over the same coordinates, which keeps the
    // acquisition from being dominated by the slowest designs.
    let samples_cycles: Vec<(Vec<f64>, f64)> = points
        .iter()
        .map(|p| (features(&p.params, param_names), ln_obj(p.cycles)))
        .collect();
    let samples_area: Vec<(Vec<f64>, f64)> = points
        .iter()
        .map(|p| (features(&p.params, param_names), ln_obj(p.area.alms)))
        .collect();
    let train_cfg = TrainConfig {
        max_epochs: cfg.epochs,
        target_mse: 1e-6,
        ..TrainConfig::default()
    };
    let (model_cycles, model_area) = {
        let _span = dhdl_obs::span_arg("dse.surrogate.train", "samples", points.len() as u64);
        dhdl_obs::counter!("dse.surrogate.train").incr();
        // Fixed seeds: retraining must be a pure function of the data.
        let c = Regressor::try_fit(&samples_cycles, cfg.hidden, 0xC7C1E5, &train_cfg)?;
        let a = Regressor::try_fit(&samples_area, cfg.hidden, 0xA7EA, &train_cfg)?;
        (c, a)
    };
    // The current front (valid points only) and a reference box over
    // everything seen, padded so fringe candidates still score.
    let front = staircase(
        &points
            .iter()
            .filter(|p| p.valid)
            .map(|p| (ln_obj(p.cycles), ln_obj(p.area.alms)))
            .collect::<Vec<_>>(),
    );
    let reference = reference_point(
        points
            .iter()
            .map(|p| (ln_obj(p.cycles), ln_obj(p.area.alms))),
        0.25,
    )?;
    Some(
        remaining
            .iter()
            .map(|&i| {
                let x = features(&pool[i], param_names);
                let pred = (model_cycles.predict(&x), model_area.predict(&x));
                (i, improvement(&front, reference, pred))
            })
            .collect(),
    )
}

/// Feature vector for one parameter assignment: `log2(1 + value)` per
/// parameter in declaration order (tile sizes and par factors are
/// near-geometric, toggles stay 0/1-ish; the `Normalizer` inside the
/// regressor maps each column to `[0, 1]`).
fn features(params: &ParamValues, param_names: &[String]) -> Vec<f64> {
    param_names
        .iter()
        .map(|n| params.get(n).map_or(0.0, |v| ((v + 1) as f64).log2()))
        .collect()
}

/// An objective in log space, guarded against zero.
fn ln_obj(v: f64) -> f64 {
    v.max(1e-9).ln()
}

/// Assemble the [`DseResult`] in canonical pool-index order — the same
/// for every thread count and for interrupted-then-resumed runs. A
/// truncated run reports the unfilled remainder of the budget as
/// skipped, mirroring the random sweep's accounting.
fn assemble(
    evaluated: BTreeMap<usize, PointOutcome>,
    budget: usize,
    attempted: usize,
    space_size: u128,
    truncated: bool,
    stats: SweepStats,
) -> DseResult {
    let mut outcome_list: Vec<PointOutcome> = evaluated.values().cloned().collect();
    if truncated {
        outcome_list.extend(
            std::iter::repeat(PointOutcome::Skipped).take(budget.saturating_sub(attempted)),
        );
    }
    let counts = OutcomeCounts::tally(&outcome_list);
    let mut points = Vec::new();
    let mut errors = Vec::new();
    for (key, outcome) in evaluated {
        match outcome {
            PointOutcome::Evaluated { point, .. } => points.push(point),
            PointOutcome::Discarded(err) => errors.push((key, err)),
            PointOutcome::Skipped => {}
        }
    }
    let pareto = pareto_front(&point_tuples(&points));
    DseResult {
        points,
        pareto,
        space_size,
        discarded: counts.discarded(),
        counts,
        errors,
        truncated,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_serializable() {
        let mut a = SurrogateRng::new(42);
        let mut b = SurrogateRng::new(42);
        let draws_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(draws_a, draws_b);
        assert_ne!(SurrogateRng::new(43).next_u64(), draws_a[0]);
        // Restoring from the exposed state continues the sequence.
        let mut c = SurrogateRng { state: a.state() };
        assert_eq!(c.next_u64(), b.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SurrogateRng::new(7);
        for n in [1usize, 2, 3, 17, 1000] {
            for _ in 0..50 {
                assert!(r.below(n) < n);
            }
        }
    }

    #[test]
    fn features_follow_declaration_order() {
        let names = vec!["tile".to_string(), "par".to_string(), "mp".to_string()];
        let p = ParamValues::new().with("par", 3).with("tile", 7);
        let f = features(&p, &names);
        assert_eq!(f, vec![3.0, 2.0, 0.0]); // log2(8), log2(4), missing → 0
    }
}
