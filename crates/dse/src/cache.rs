//! The estimate cache: memoized design-point estimates for the DSE hot
//! path.
//!
//! A 75 000-point sweep re-estimates the same structural design whenever
//! sampling, refinement rounds, retries or repeated experiment runs
//! revisit a parameter assignment. [`EstimateCache`] short-circuits those
//! evaluations with two levels:
//!
//! 1. **Structural level** — a sharded, lock-striped concurrent map from
//!    the canonical [`dhdl_core::structural_hash`] of a design to its
//!    [`Estimate`]. This is the source of truth: every cached estimate
//!    lives here, keyed by the full node-level structure.
//! 2. **Parameter level** — a memo from a [`params_key`] (benchmark
//!    salt plus parameter assignment) to the structural hash its design
//!    builds to. Building a design and hashing it cost several times more than
//!    the memoized estimate they would look up, so a warm sweep that
//!    stopped at level 1 would run *slower* than an uncached one. The
//!    level-2 memo lets the runner skip design construction entirely on
//!    a warm point ([`CostModel::lookup_params`](crate::CostModel)).
//!
//! [`CachedModel`] wraps any [`CostModel`] with both levels, and the
//! runner surfaces hit/miss counters through
//! [`CostModel::cache_stats`](crate::CostModel::cache_stats) so sweep
//! reports can print throughput and hit rates.
//!
//! Correctness invariants:
//!
//! * **Transparency.** A cache hit returns the bit-exact [`Estimate`] the
//!   wrapped model produced on the miss, so sweeps with the cache off, on,
//!   or pre-warmed from disk yield byte-identical results (tested in
//!   `tests/cache_consistency.rs`).
//! * **Only finite estimates are cached.** The runner treats non-finite
//!   estimates as transient and retries them; caching a NaN would turn a
//!   transient fault into a permanent one. [`EstimateCache::insert`]
//!   silently drops non-finite entries, so a [`crate::FaultInjector`]
//!   NaN is re-evaluated on retry and the *successful* result is cached.
//!   The parameter memo only records assignments whose estimate landed
//!   in the structural map, so the fast path can never fabricate or
//!   resurrect a non-finite estimate.
//! * **Versioned persistence.** The on-disk cache under `results/cache/`
//!   is keyed by a fingerprint of the trained area model and the target
//!   platform ([`model_fingerprint`]); a stale or mismatched file is
//!   ignored, never trusted.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dhdl_core::{structural_hash, Design, Fnv64, ParamValues};
use dhdl_estimate::{Estimate, Estimator};
use dhdl_target::{AreaReport, Platform};

use crate::runner::CostModel;

/// Version tag mixed into [`model_fingerprint`] and written in the disk
/// header; bump when the on-disk entry format changes.
/// (v2 added the `p`-prefixed parameter-memo lines.)
const FORMAT_VERSION: &str = "dhdl-estimate-cache v2";

/// Number of independent lock shards. A power of two so the shard index
/// is a mask of the (well-mixed) FNV key; 16 shards keep contention
/// negligible for the worker counts the sweep runner uses.
const SHARDS: usize = 16;

/// Where estimates for a sweep come from: disabled, in-memory only, or
/// persisted across runs under `results/cache/`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// No caching: every point is estimated from scratch.
    Off,
    /// In-memory cache for the lifetime of the process.
    Memory,
    /// In-memory cache loaded from and flushed to a versioned file under
    /// the results directory (the default).
    #[default]
    Disk,
}

impl CacheMode {
    /// Parse a mode string: `off`/`0`, `mem`/`memory`, or `disk`.
    ///
    /// # Errors
    ///
    /// Returns the offending string for anything else — a typo'd
    /// `DHDL_DSE_CACHE=dsk` must not silently select a different mode.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        match s {
            "off" | "0" => Ok(CacheMode::Off),
            "mem" | "memory" => Ok(CacheMode::Memory),
            "disk" => Ok(CacheMode::Disk),
            other => Err(format!(
                "unrecognized cache mode `{other}` (expected off|mem|disk)"
            )),
        }
    }

    /// Read the mode from the `DHDL_DSE_CACHE` environment variable
    /// (`off`, `mem`, or `disk`; the default when unset is `disk`).
    /// An unrecognized value falls back to the default with a warning on
    /// stderr rather than silently masquerading as a valid mode.
    pub fn from_env() -> Self {
        match std::env::var("DHDL_DSE_CACHE") {
            Ok(v) => CacheMode::parse(&v).unwrap_or_else(|e| {
                eprintln!("warning: DHDL_DSE_CACHE: {e}; using disk");
                CacheMode::Disk
            }),
            Err(_) => CacheMode::Disk,
        }
    }
}

impl std::str::FromStr for CacheMode {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        CacheMode::parse(s)
    }
}

/// The level-2 key of a parameter assignment under a benchmark `salt`:
/// FNV-1a over the salt word followed by each `(name, value)` pair in
/// canonical (name-sorted) order.
///
/// The salt identifies *which metaprogram* maps these parameters to a
/// design — two benchmarks can legally share an assignment like
/// `{par=4, tile=64}`, so sweeps sharing one cache must key with
/// distinct salts (see [`crate::DseOptions::cache_salt`]).
pub fn params_key(salt: u64, params: &ParamValues) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(salt);
    for (name, value) in params.iter() {
        h.write(name.as_bytes());
        h.write_u64(value);
    }
    h.finish()
}

/// The structural-cache key of a design estimated across `k` devices.
///
/// `k <= 1` is the plain structural hash — single-chip entries stay
/// shared with (and bit-identical to) sweeps that never heard of
/// partitioning. `k > 1` mixes the device count in so a multi-device
/// estimate (different area, different cycles) can never be served for
/// a single-chip lookup of the same design or vice versa.
pub fn devices_key(structural: u64, k: u32) -> u64 {
    if k <= 1 {
        return structural;
    }
    let mut h = Fnv64::new();
    h.write_u64(structural);
    h.write(b"num_fpgas");
    h.write_u64(u64::from(k));
    h.finish()
}

/// Whether every field of an estimate is finite (cacheable).
fn estimate_is_finite(est: &Estimate) -> bool {
    est.cycles.is_finite()
        && est.area.alms.is_finite()
        && est.area.regs.is_finite()
        && est.area.dsps.is_finite()
        && est.area.brams.is_finite()
}

/// Cumulative counters of an [`EstimateCache`] (monotonic within a
/// process; see [`CacheStats::since`] for per-sweep deltas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the wrapped model.
    pub misses: u64,
    /// Finite estimates stored (non-finite inserts are dropped).
    pub inserts: u64,
    /// Entries currently resident (including any loaded from disk).
    pub entries: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas since an `earlier` snapshot of the same cache;
    /// `entries` keeps the current (later) value.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            inserts: self.inserts.saturating_sub(earlier.inserts),
            entries: self.entries,
        }
    }
}

/// A sharded, lock-striped concurrent map from canonical structural
/// design hashes to estimates.
///
/// Shards are plain `Mutex<HashMap>`s: lookups in the sweep are dwarfed
/// by elaboration even on a hit-heavy run, so striping (not lock-free
/// cleverness) is all the concurrency the workload needs. Poisoned locks
/// are recovered, not propagated — a panicking estimator thread (fault
/// injection does this on purpose) must not take the cache down with it.
#[derive(Debug)]
pub struct EstimateCache {
    shards: Vec<Mutex<HashMap<u64, Estimate>>>,
    /// The parameter memo ([`params_key`] → structural hash), sharded
    /// the same way.
    params: Vec<Mutex<HashMap<u64, u64>>>,
    fingerprint: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl EstimateCache {
    /// An empty cache for estimates produced under `fingerprint`
    /// (see [`model_fingerprint`]).
    pub fn new(fingerprint: u64) -> Self {
        EstimateCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            params: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            fingerprint,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// The model/target fingerprint this cache's entries are valid for.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, Estimate>> {
        // FNV output is well mixed; the low bits pick the stripe.
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    /// Look up the estimate for structural-hash `key`, counting the hit
    /// or miss. (In observation output the structural map is `cache.l2`;
    /// the parameter memo in front of it is `cache.l1`.)
    pub fn get(&self, key: u64) -> Option<Estimate> {
        let found = self
            .shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .copied();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            dhdl_obs::counter!("cache.l2.hit").incr();
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            dhdl_obs::counter!("cache.l2.miss").incr();
        }
        found
    }

    /// Store a *finite* estimate for `key`. Non-finite estimates are
    /// dropped: the runner retries them as transient faults, and a cached
    /// NaN would be re-served forever.
    pub fn insert(&self, key: u64, est: Estimate) {
        if !estimate_is_finite(&est) {
            return;
        }
        self.shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, est);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        dhdl_obs::counter!("cache.l2.insert").incr();
    }

    /// Look up the structural hash that parameter key `key` builds to.
    /// [`CacheStats`]-counter-free: the resolving [`EstimateCache::get`]
    /// on the returned hash records the hit or miss, so a fast-path
    /// lookup counts once. (Observation counters `cache.l1.*` do track
    /// this memo level separately.)
    pub fn get_params(&self, key: u64) -> Option<u64> {
        let found = self.params[(key as usize) & (SHARDS - 1)]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .copied();
        if found.is_some() {
            dhdl_obs::counter!("cache.l1.hit").incr();
        } else {
            dhdl_obs::counter!("cache.l1.miss").incr();
        }
        found
    }

    /// Record that parameter key `key` builds a design with structural
    /// hash `structural`. Callers must only record keys whose estimate
    /// was accepted by [`EstimateCache::insert`] (finite), so the memo
    /// never points at a value the structural map would refuse to hold.
    pub fn insert_params(&self, key: u64, structural: u64) {
        dhdl_obs::counter!("cache.l1.insert").incr();
        self.params[(key as usize) & (SHARDS - 1)]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, structural);
    }

    /// Number of resident parameter-memo entries.
    pub fn params_len(&self) -> usize {
        self.params
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// `true` when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the cumulative counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }

    /// The on-disk path for a cache with `fingerprint` under `dir`.
    pub fn path_in(dir: &Path, fingerprint: u64) -> PathBuf {
        dir.join(format!("estimates_{fingerprint:016x}.txt"))
    }

    /// Load the persisted cache for `fingerprint` from `dir`, or an
    /// empty cache when no file exists, the header does not match, or
    /// any line is malformed (a corrupt cache costs warm-up time, never
    /// correctness).
    ///
    /// A missing file is the normal cold start and stays silent; every
    /// *rebuild* — a corrupt header, a mismatched model fingerprint, or
    /// a malformed entry — emits one structured warning to stderr and
    /// increments the `cache.l2.rebuild` obs counter, so silently
    /// losing a warm cache is impossible.
    pub fn load(dir: &Path, fingerprint: u64) -> Self {
        let _span = dhdl_obs::span!("cache.load");
        let _t = dhdl_obs::histogram!("cache.disk.load_ns").timer();
        let cache = EstimateCache::new(fingerprint);
        let path = Self::path_in(dir, fingerprint);
        let rebuild = |reason: &str| {
            eprintln!(
                "warning: estimate cache {} {reason}; rebuilding from scratch",
                path.display()
            );
            dhdl_obs::counter!("cache.l2.rebuild").incr();
            EstimateCache::new(fingerprint)
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return cache,
            Err(e) => return rebuild(&format!("is unreadable ({e})")),
        };
        let mut lines = text.lines();
        let expected_header = format!("{FORMAT_VERSION} {fingerprint:016x}");
        if lines.next() != Some(expected_header.as_str()) {
            return rebuild("has a corrupt header or mismatched model fingerprint");
        }
        for (n, line) in lines.enumerate() {
            if let Some(rest) = line.strip_prefix("p ") {
                let Some((key, structural)) = parse_params_entry(rest) else {
                    return rebuild(&format!("has a malformed memo entry at line {}", n + 2));
                };
                cache.insert_params(key, structural);
                continue;
            }
            let Some((key, est)) = parse_entry(line) else {
                // One bad line invalidates the whole file: a partial
                // write must not masquerade as a smaller valid cache.
                return rebuild(&format!("has a malformed entry at line {}", n + 2));
            };
            cache
                .shard(key)
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(key, est);
        }
        cache
    }

    /// Persist all entries to the versioned file under `dir`, creating
    /// the directory as needed. Entries are written sorted by key so the
    /// file is deterministic for a given content; the write goes through
    /// a temp file and rename so readers never see a torn cache.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating, writing or renaming the file.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let _span = dhdl_obs::span!("cache.flush");
        let _t = dhdl_obs::histogram!("cache.disk.store_ns").timer();
        std::fs::create_dir_all(dir)?;
        let mut entries: Vec<(u64, Estimate)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let map = shard.lock().unwrap_or_else(|e| e.into_inner());
            entries.extend(map.iter().map(|(&k, &v)| (k, v)));
        }
        entries.sort_unstable_by_key(|&(k, _)| k);
        let mut out = format!("{FORMAT_VERSION} {:016x}\n", self.fingerprint);
        for (key, est) in entries {
            let _ = writeln!(
                out,
                "{key:016x} {:016x} {:016x} {:016x} {:016x} {:016x}",
                est.cycles.to_bits(),
                est.area.alms.to_bits(),
                est.area.regs.to_bits(),
                est.area.dsps.to_bits(),
                est.area.brams.to_bits()
            );
        }
        // The parameter memo follows the estimates, `p`-prefixed so a
        // torn estimate line can never be mistaken for a memo line.
        let mut mappings: Vec<(u64, u64)> = Vec::with_capacity(self.params_len());
        for shard in &self.params {
            let map = shard.lock().unwrap_or_else(|e| e.into_inner());
            mappings.extend(map.iter().map(|(&k, &v)| (k, v)));
        }
        mappings.sort_unstable();
        for (key, structural) in mappings {
            let _ = writeln!(out, "p {key:016x} {structural:016x}");
        }
        let path = Self::path_in(dir, self.fingerprint);
        let tmp = path.with_extension("txt.tmp");
        std::fs::write(&tmp, out)?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

/// Parse one `key cycles alms regs dsps brams` entry line (all fields
/// 16-digit lowercase hex; the f64 fields are IEEE-754 bit patterns, so
/// the round trip is bit-exact).
fn parse_entry(line: &str) -> Option<(u64, Estimate)> {
    let mut fields = line.split_ascii_whitespace();
    let mut next = || {
        let f = fields.next()?;
        // Fixed-width fields so a truncated trailing field (torn write)
        // cannot parse as a shorter, different value.
        if f.len() != 16 {
            return None;
        }
        u64::from_str_radix(f, 16).ok()
    };
    let key = next()?;
    let est = Estimate {
        cycles: f64::from_bits(next()?),
        area: AreaReport {
            alms: f64::from_bits(next()?),
            regs: f64::from_bits(next()?),
            dsps: f64::from_bits(next()?),
            brams: f64::from_bits(next()?),
        },
    };
    if fields.next().is_some() {
        return None;
    }
    Some((key, est))
}

/// Parse the body of a `p <params_key> <structural>` memo line (both
/// fields 16-digit lowercase hex).
fn parse_params_entry(rest: &str) -> Option<(u64, u64)> {
    let mut fields = rest.split_ascii_whitespace();
    let mut next = || {
        let f = fields.next()?;
        if f.len() != 16 {
            return None;
        }
        u64::from_str_radix(f, 16).ok()
    };
    let key = next()?;
    let structural = next()?;
    if fields.next().is_some() {
        return None;
    }
    Some((key, structural))
}

/// Fingerprint of everything an estimate depends on besides the design:
/// the trained area model, the target platform, and the cache format
/// version. Two estimators with equal fingerprints produce bit-identical
/// estimates, so a persisted cache keyed by this value survives exactly
/// as long as it is valid.
pub fn model_fingerprint(estimator: &Estimator) -> u64 {
    let mut h = Fnv64::new();
    h.write(FORMAT_VERSION.as_bytes());
    h.write(estimator.area_model().to_text().as_bytes());
    // Platform's Debug rendering covers every numeric field of the
    // device and power models; Fnv64 hashes it without allocating.
    let _ = write!(h, "{:?}", estimator.platform());
    h.finish()
}

/// A [`CostModel`] that consults an [`EstimateCache`] before delegating
/// to the wrapped model, and answers the runner's parameter-keyed fast
/// path ([`CostModel::lookup_params`]) so warm sweeps skip design
/// construction entirely.
///
/// Wrap the *outermost* model: in fault-injection tests the cache wraps
/// the [`crate::FaultInjector`], so an injected NaN reaches the cache
/// (and is dropped by the finite-only insert) rather than bypassing it.
#[derive(Debug)]
pub struct CachedModel<'a, E: CostModel> {
    inner: &'a E,
    cache: &'a EstimateCache,
}

impl<'a, E: CostModel> CachedModel<'a, E> {
    /// Wrap `inner` with lookups in `cache`.
    pub fn new(inner: &'a E, cache: &'a EstimateCache) -> Self {
        CachedModel { inner, cache }
    }

    /// The cache this model consults.
    pub fn cache(&self) -> &EstimateCache {
        self.cache
    }
}

impl<E: CostModel> CostModel for CachedModel<'_, E> {
    fn estimate(&self, design: &Design) -> Estimate {
        self.estimate_keyed(None, design)
    }

    fn lookup_params(&self, params_key: u64) -> Option<Estimate> {
        let structural = self.cache.get_params(params_key)?;
        self.cache.get(structural)
    }

    fn estimate_keyed(&self, params_key: Option<u64>, design: &Design) -> Estimate {
        let key = structural_hash(design);
        let est = match self.cache.get(key) {
            Some(est) => est,
            None => {
                let est = self.inner.estimate(design);
                self.cache.insert(key, est);
                est
            }
        };
        // Record the fast-path mapping only for estimates the structural
        // map accepted (finite): a memo entry pointing at nothing would
        // just double-count misses, and one recorded during a transient
        // NaN fault would defeat the runner's retry.
        if let Some(pk) = params_key {
            if estimate_is_finite(&est) {
                self.cache.insert_params(pk, key);
            }
        }
        est
    }

    fn estimate_devices(&self, params_key: Option<u64>, design: &Design, k: u32) -> Estimate {
        if k <= 1 {
            return self.estimate_keyed(params_key, design);
        }
        let key = devices_key(structural_hash(design), k);
        let est = match self.cache.get(key) {
            Some(est) => est,
            None => {
                let est = self.inner.estimate_devices(None, design, k);
                self.cache.insert(key, est);
                est
            }
        };
        // Same finite-only memo rule as `estimate_keyed`: the parameter
        // memo may point at the device-salted key because `params_key`
        // already hashes `num_fpgas` — one assignment, one key.
        if let Some(pk) = params_key {
            if estimate_is_finite(&est) {
                self.cache.insert_params(pk, key);
            }
        }
        est
    }

    fn platform(&self) -> &Platform {
        self.inner.platform()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(cycles: f64) -> Estimate {
        Estimate {
            cycles,
            area: AreaReport {
                alms: 100.0,
                regs: 200.0,
                dsps: 3.0,
                brams: 4.0,
            },
        }
    }

    #[test]
    fn get_insert_and_counters() {
        let cache = EstimateCache::new(7);
        assert_eq!(cache.get(1), None);
        cache.insert(1, est(10.0));
        assert_eq!(cache.get(1), Some(est(10.0)));
        assert!(!cache.is_empty());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (1, 1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn non_finite_estimates_are_never_cached() {
        let cache = EstimateCache::new(0);
        cache.insert(1, est(f64::NAN));
        cache.insert(2, est(f64::INFINITY));
        let mut bad_area = est(1.0);
        bad_area.area.alms = f64::NAN;
        cache.insert(3, bad_area);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().inserts, 0);
        // The failed lookups above were not made; these count as misses.
        assert_eq!(cache.get(1), None);
    }

    #[test]
    fn corrupt_or_mismatched_files_rebuild_with_a_counter() {
        let dir = std::env::temp_dir().join(format!("dhdl-cache-rebuild-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dhdl_obs::init(dhdl_obs::Mode::Summary);
        let rebuilds = || dhdl_obs::counter!("cache.l2.rebuild").get();

        // Missing file: the normal cold start — no rebuild counted.
        let before = rebuilds();
        let cold = EstimateCache::load(&dir, 0xF00D);
        assert!(cold.is_empty());
        assert_eq!(rebuilds(), before);

        // A valid file whose header carries a *different* fingerprint
        // (stale model) at this fingerprint's path: rebuild, counted.
        let other = EstimateCache::new(0xBEEF);
        other.insert(1, est(10.0));
        other.save(&dir).unwrap();
        std::fs::rename(
            EstimateCache::path_in(&dir, 0xBEEF),
            EstimateCache::path_in(&dir, 0xF00D),
        )
        .unwrap();
        let rebuilt = EstimateCache::load(&dir, 0xF00D);
        assert!(rebuilt.is_empty());
        assert_eq!(rebuilds(), before + 1);

        // A torn entry line: rebuild, counted.
        let cache = EstimateCache::new(0xF00D);
        cache.insert(1, est(10.0));
        cache.insert(2, est(20.0));
        let path = cache.save(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 7]).unwrap();
        let rebuilt = EstimateCache::load(&dir, 0xF00D);
        assert!(rebuilt.is_empty(), "partial file must not half-load");
        assert_eq!(rebuilds(), before + 2);

        dhdl_obs::init(dhdl_obs::Mode::Off);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_round_trip_is_bit_exact() {
        let dir = std::env::temp_dir().join(format!("dhdl-cache-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = EstimateCache::new(0xABCD);
        // Values that stress the format: subnormal, negative zero, huge.
        cache.insert(3, est(f64::MIN_POSITIVE / 2.0));
        cache.insert(1, est(-0.0));
        cache.insert(2, est(1e300));
        // Parameter-memo section: two assignments mapping to key 2.
        cache.insert_params(0x10, 2);
        cache.insert_params(0x11, 2);
        let path = cache.save(&dir).unwrap();
        assert_eq!(path, EstimateCache::path_in(&dir, 0xABCD));

        let loaded = EstimateCache::load(&dir, 0xABCD);
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded.params_len(), 2);
        for key in [1u64, 2, 3] {
            let a = cache.get(key).unwrap();
            let b = loaded.get(key).unwrap();
            assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
            assert_eq!(a.area, b.area);
        }
        assert_eq!(loaded.get_params(0x10), Some(2));
        assert_eq!(loaded.get_params(0x11), Some(2));
        assert_eq!(loaded.get_params(0x12), None);
        // A different fingerprint must not see these entries.
        assert!(EstimateCache::load(&dir, 0xABCE).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_truncated_files_load_empty() {
        let dir = std::env::temp_dir().join(format!("dhdl-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = EstimateCache::new(5);
        cache.insert(1, est(2.0));
        cache.insert_params(9, 1);
        let path = cache.save(&dir).unwrap();

        let good = std::fs::read_to_string(&path).unwrap();
        // Truncated memo line (the file's last line): whole file rejected.
        std::fs::write(&path, &good[..good.len() - 5]).unwrap();
        let loaded = EstimateCache::load(&dir, 5);
        assert!(loaded.is_empty() && loaded.params_len() == 0);
        // Wrong header version: rejected.
        std::fs::write(
            &path,
            good.replace(FORMAT_VERSION, "dhdl-estimate-cache v0"),
        )
        .unwrap();
        assert!(EstimateCache::load(&dir, 5).is_empty());
        // An estimate line torn down to two fields must not pass as a
        // memo line (memo lines carry the `p ` prefix).
        let torn: String = good
            .lines()
            .map(|l| {
                if l.starts_with('p') || l.starts_with(FORMAT_VERSION) {
                    format!("{l}\n")
                } else {
                    let cut: Vec<&str> = l.split_ascii_whitespace().take(2).collect();
                    format!("{}\n", cut.join(" "))
                }
            })
            .collect();
        std::fs::write(&path, torn).unwrap();
        assert!(EstimateCache::load(&dir, 5).is_empty());
        // Missing file: empty, no error.
        std::fs::remove_file(&path).unwrap();
        assert!(EstimateCache::load(&dir, 5).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn params_key_is_canonical_and_salted() {
        let p = ParamValues::new().with("tile", 64).with("par", 4);
        // Insertion order does not matter (BTreeMap canonical order).
        let q = ParamValues::new().with("par", 4).with("tile", 64);
        assert_eq!(params_key(7, &p), params_key(7, &q));
        // Salt, names and values all separate keys.
        assert_ne!(params_key(7, &p), params_key(8, &p));
        assert_ne!(params_key(7, &p), params_key(7, &p.clone().with("par", 8)));
        assert_ne!(
            params_key(7, &ParamValues::new().with("a", 1)),
            params_key(7, &ParamValues::new().with("b", 1))
        );
    }

    #[test]
    fn keyed_estimates_record_the_params_memo_only_when_finite() {
        use dhdl_core::{by, DType, DesignBuilder, ReduceOp};
        use std::sync::atomic::AtomicBool;

        // A model that returns NaN exactly once, then a fixed estimate.
        struct Flaky {
            platform: Platform,
            nan_next: AtomicBool,
        }
        impl CostModel for Flaky {
            fn estimate(&self, _design: &Design) -> Estimate {
                if self.nan_next.swap(false, Ordering::Relaxed) {
                    est(f64::NAN)
                } else {
                    est(42.0)
                }
            }
            fn platform(&self) -> &Platform {
                &self.platform
            }
        }

        let mut b = DesignBuilder::new("toy");
        let x = b.off_chip("x", DType::F32, &[256]);
        b.sequential(|b| {
            let acc = b.reg("acc", DType::F32, 0.0);
            b.meta_pipe(&[by(256, 64)], 1, |b, iters| {
                let t = b.bram("t", DType::F32, &[64]);
                b.tile_load(x, t, &[iters[0]], &[64], 1);
                b.pipe_reduce(&[by(64, 1)], 1, acc, ReduceOp::Add, |b, it| {
                    let v = b.load(t, &[it[0]]);
                    b.mul(v, v)
                });
            });
        });
        let design = b.finish().unwrap();

        let model = Flaky {
            platform: Platform::maia(),
            nan_next: AtomicBool::new(true),
        };
        let cache = EstimateCache::new(1);
        let cached = CachedModel::new(&model, &cache);
        let pk = params_key(3, &ParamValues::new().with("tile", 64));

        // NaN attempt: nothing recorded at either level.
        assert!(cached.estimate_keyed(Some(pk), &design).cycles.is_nan());
        assert_eq!((cache.len(), cache.params_len()), (0, 0));
        assert_eq!(cached.lookup_params(pk), None);

        // Retry succeeds: both levels recorded, fast path answers.
        assert_eq!(cached.estimate_keyed(Some(pk), &design), est(42.0));
        assert_eq!((cache.len(), cache.params_len()), (1, 1));
        assert_eq!(cached.lookup_params(pk), Some(est(42.0)));
    }

    #[test]
    fn cache_mode_parses_env_values() {
        // from_env reads the process environment, which tests must not
        // mutate (other tests run concurrently); exercise the parser the
        // env path delegates to instead.
        assert_eq!(CacheMode::default(), CacheMode::Disk);
        assert_eq!(CacheMode::parse("off"), Ok(CacheMode::Off));
        assert_eq!(CacheMode::parse("0"), Ok(CacheMode::Off));
        assert_eq!(CacheMode::parse("mem"), Ok(CacheMode::Memory));
        assert_eq!(CacheMode::parse("memory"), Ok(CacheMode::Memory));
        assert_eq!(CacheMode::parse("disk"), Ok(CacheMode::Disk));
        assert_eq!("disk".parse::<CacheMode>(), Ok(CacheMode::Disk));
    }

    #[test]
    fn cache_mode_rejects_garbage() {
        for bad in ["", "dsk", "on", "OFF", "Disk", "disk ", "1", "true"] {
            let r = CacheMode::parse(bad);
            assert!(r.is_err(), "`{bad}` should be rejected, got {r:?}");
            assert!(
                r.unwrap_err().contains("off|mem|disk"),
                "error should name the valid modes"
            );
        }
    }

    #[test]
    fn stats_since_subtracts_counters() {
        let earlier = CacheStats {
            hits: 10,
            misses: 5,
            inserts: 4,
            entries: 4,
        };
        let later = CacheStats {
            hits: 30,
            misses: 9,
            inserts: 7,
            entries: 7,
        };
        let d = later.since(&earlier);
        assert_eq!((d.hits, d.misses, d.inserts, d.entries), (20, 4, 3, 7));
    }
}
