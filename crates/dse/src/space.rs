//! Legal design-space enumeration and sampling (§IV-C).
//!
//! The pruning heuristics of the paper define a "legal" subspace:
//! parallelization factors and tile sizes are integer divisors of their
//! iteration counts / data dimensions (non-divisors create edge cases
//! needing modulus logic), banking is eliminated as an independent
//! variable by the automatic banking analysis, and each local memory is
//! capped at a fixed maximum size.

use dhdl_core::{ParamSpace, ParamValues};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// An enumerable legal subspace of a benchmark's parameter space.
#[derive(Debug, Clone)]
pub struct LegalSpace {
    names: Vec<String>,
    values: Vec<Vec<u64>>,
}

impl LegalSpace {
    /// Build the legal subspace of `space` using the divisor pruning rules.
    pub fn new(space: &ParamSpace) -> Self {
        let names = space.defs().iter().map(|d| d.name.clone()).collect();
        let values = space.defs().iter().map(|d| d.kind.legal_values()).collect();
        LegalSpace { names, values }
    }

    /// Total number of legal points.
    pub fn size(&self) -> u128 {
        self.values.iter().map(|v| v.len() as u128).product()
    }

    /// Decode a linear index into a parameter assignment, or `None` if
    /// `index >= self.size()` — the checked form callers should prefer
    /// so a malformed index is an error, not a process abort.
    pub fn try_point(&self, index: u128) -> Option<ParamValues> {
        if index >= self.size() {
            return None;
        }
        let mut rem = index;
        let mut v = ParamValues::new();
        for (name, vals) in self.names.iter().zip(&self.values).rev() {
            let n = vals.len() as u128;
            v.set(name, vals[(rem % n) as usize]);
            rem /= n;
        }
        Some(v)
    }

    /// Decode a linear index into a parameter assignment.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.size()`; use [`LegalSpace::try_point`]
    /// to handle untrusted indices gracefully.
    pub fn point(&self, index: u128) -> ParamValues {
        self.try_point(index).expect("index out of range")
    }

    /// Enumerate every legal point (use only when [`LegalSpace::size`] is
    /// small).
    pub fn enumerate(&self) -> Vec<ParamValues> {
        (0..self.size()).filter_map(|i| self.try_point(i)).collect()
    }

    /// Draw up to `n` distinct legal points uniformly at random
    /// ("we randomly generate estimates for up to 75,000 legal points to
    /// give a representative view of the entire design space", §IV-C).
    pub fn sample(&self, n: usize, seed: u64) -> Vec<ParamValues> {
        let size = self.size();
        if size <= n as u128 {
            return self.enumerate();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen = BTreeSet::new();
        let mut out = Vec::with_capacity(n);
        // Rejection sampling with a generous retry budget. Indices are
        // decoded through the checked `try_point`, so a bad draw can
        // never abort the sweep.
        let mut tries = 0usize;
        while out.len() < n && tries < n * 20 {
            tries += 1;
            let idx = rng.gen_range(0..u64::MAX) as u128 % size;
            if seen.insert(idx) {
                if let Some(p) = self.try_point(idx) {
                    out.push(p);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.tile("ts", 96, 8, 96);
        s.par("p1", 16, 8);
        s.toggle("m");
        s
    }

    #[test]
    fn try_point_rejects_out_of_range_indices() {
        let ls = LegalSpace::new(&space());
        let size = ls.size();
        assert!(ls.try_point(size).is_none());
        assert!(ls.try_point(u128::MAX).is_none());
        // In-range indices decode to the same assignment as `point`.
        let p = ls.try_point(size - 1).unwrap();
        assert_eq!(p, ls.point(size - 1));
        // The empty space rejects every index instead of dividing by
        // zero.
        let empty = LegalSpace::new(&ParamSpace::new().tile("t", 7, 9, 9).clone());
        if empty.size() == 0 {
            assert!(empty.try_point(0).is_none());
        }
    }

    #[test]
    fn size_matches_product() {
        let ls = LegalSpace::new(&space());
        // ts in {8,12,16,24,32,48,96} = 7; p1 in {1,2,4,8} = 4; m in {0,1}.
        assert_eq!(ls.size(), 7 * 4 * 2);
    }

    #[test]
    fn enumerate_covers_all_points_uniquely() {
        let ls = LegalSpace::new(&space());
        let pts = ls.enumerate();
        assert_eq!(pts.len() as u128, ls.size());
        let set: BTreeSet<String> = pts.iter().map(|p| p.to_string()).collect();
        assert_eq!(set.len(), pts.len());
    }

    #[test]
    fn sample_is_distinct_and_legal() {
        let ls = LegalSpace::new(&space());
        let pts = ls.sample(20, 7);
        assert_eq!(pts.len(), 20);
        let sp = space();
        for p in &pts {
            assert!(sp.is_legal(p), "{p}");
        }
        let set: BTreeSet<String> = pts.iter().map(|p| p.to_string()).collect();
        assert_eq!(set.len(), pts.len());
    }

    #[test]
    fn sample_of_small_space_is_exhaustive() {
        let ls = LegalSpace::new(&space());
        let pts = ls.sample(10_000, 1);
        assert_eq!(pts.len() as u128, ls.size());
    }

    #[test]
    fn sampling_is_deterministic_by_seed() {
        let ls = LegalSpace::new(&space());
        assert_eq!(
            ls.sample(10, 3)
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>(),
            ls.sample(10, 3)
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
        );
    }
}
