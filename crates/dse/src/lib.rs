//! # dhdl-dse — design space exploration
//!
//! The exploration phase of the framework (§IV-C): given a benchmark
//! metaprogram and its declared [`dhdl_core::ParamSpace`], enumerate or
//! sample the *legal* subspace (divisor-pruned tile sizes and
//! parallelization factors, automatic banking, per-memory size caps),
//! estimate every point with the fast estimators, and extract the
//! Pareto-optimal surface over execution time and ALM usage — the data
//! behind Figure 5.
//!
//! Two [`SearchStrategy`] implementations spend the point budget: the
//! paper's uniform random sweep (the default) and a surrogate-guided
//! active-learning loop that trains `dhdl-mlp` regressors online and
//! acquires the candidates with the highest predicted Pareto-hypervolume
//! improvement ([`hypervolume`]) — reaching a comparable front at a
//! fraction of the evaluations (see `results/BENCH_dse.json`).
//!
//! Sweeps run on a resilient parallel runner: points fan out over a
//! work-stealing thread pool with per-point panic isolation and bounded
//! retries, discards are accounted per cause in [`OutcomeCounts`], a
//! wall-clock [`DseOptions::deadline`] truncates gracefully, and
//! [`DseOptions::checkpoint`] streams completed points to disk so an
//! interrupted sweep resumes without re-evaluating them. The
//! [`FaultInjector`] harness injects deterministic panics, NaNs and
//! latency spikes so those paths stay tested.
//!
//! Estimates are memoizable: [`CachedModel`] wraps any [`CostModel`]
//! with a sharded [`EstimateCache`] keyed by the canonical
//! [`dhdl_core::structural_hash`], optionally persisted under
//! `results/cache/` and versioned by [`model_fingerprint`]. A second,
//! parameter-keyed memo level ([`params_key`], enabled per sweep via
//! [`DseOptions::cache_salt`]) lets warm sweeps skip design construction
//! and hashing outright — the warm fast path. Sweeps are bit-identical
//! with the cache off, on, or pre-warmed; per-sweep timing, throughput
//! and hit rates surface in [`DseResult::stats`].
//!
//! ```no_run
//! use dhdl_dse::{explore, DseOptions};
//! use dhdl_estimate::Estimator;
//! use dhdl_target::Platform;
//!
//! let estimator = Estimator::calibrate(&Platform::maia(), 1);
//! # let (build, space): (fn(&dhdl_core::ParamValues) -> dhdl_core::Result<dhdl_core::Design>, dhdl_core::ParamSpace) = unimplemented!();
//! let result = explore(build, &space, &estimator, &DseOptions::default());
//! println!(
//!     "space {} points, best {} cycles",
//!     result.space_size,
//!     result.best().unwrap().cycles
//! );
//! ```

#![warn(missing_docs)]

mod cache;
mod checkpoint;
mod fault;
pub mod hypervolume;
mod objectives;
mod pareto;
mod runner;
mod search;
mod space;
mod surrogate;

pub use cache::{
    devices_key, model_fingerprint, params_key, CacheMode, CacheStats, CachedModel, EstimateCache,
};
pub use checkpoint::Checkpoint;
pub use fault::{with_silent_panics, FaultConfig, FaultInjector, FaultPlan, InjectionCounts};
pub use objectives::{frontier_along, perf_per_area, rank_by_perf_per_area, ResourceAxis};
pub use pareto::{pareto_front, spread};
pub use runner::{CostModel, DseError, OutcomeCounts, PointOutcome, SweepStats};
pub use search::{
    evaluate_all, explore, refine, DesignPoint, DseOptions, DseResult, SearchStrategy,
    SurrogateConfig,
};
pub use space::LegalSpace;
