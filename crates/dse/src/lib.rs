//! # dhdl-dse — design space exploration
//!
//! The exploration phase of the framework (§IV-C): given a benchmark
//! metaprogram and its declared [`dhdl_core::ParamSpace`], enumerate or
//! sample the *legal* subspace (divisor-pruned tile sizes and
//! parallelization factors, automatic banking, per-memory size caps),
//! estimate every point with the fast estimators, and extract the
//! Pareto-optimal surface over execution time and ALM usage — the data
//! behind Figure 5.
//!
//! ```no_run
//! use dhdl_dse::{explore, DseOptions};
//! use dhdl_estimate::Estimator;
//! use dhdl_target::Platform;
//!
//! let estimator = Estimator::calibrate(&Platform::maia(), 1);
//! # let (build, space): (fn(&dhdl_core::ParamValues) -> dhdl_core::Result<dhdl_core::Design>, dhdl_core::ParamSpace) = unimplemented!();
//! let result = explore(build, &space, &estimator, &DseOptions::default());
//! println!(
//!     "space {} points, best {} cycles",
//!     result.space_size,
//!     result.best().unwrap().cycles
//! );
//! ```

#![warn(missing_docs)]

mod objectives;
mod pareto;
mod search;
mod space;

pub use objectives::{frontier_along, perf_per_area, rank_by_perf_per_area, ResourceAxis};
pub use pareto::{pareto_front, spread};
pub use search::{explore, refine, DesignPoint, DseOptions, DseResult};
pub use space::LegalSpace;
