//! Pareto hypervolume: the 2-D objective-space volume dominated by a
//! point set, and the marginal contribution of a candidate point.
//!
//! Both objectives are minimized (cycles, area), so the dominated region
//! of a point `p` is the axis-aligned box between `p` and a *reference
//! point* that is worse than everything under comparison. Hypervolume is
//! the canonical scalarization for comparing Pareto fronts — a front A
//! with `hypervolume(A) ≥ hypervolume(B)` covers at least as much of the
//! objective space as B — and its *improvement* under a candidate
//! insertion is the acquisition score of the surrogate-guided search
//! ([`crate::SurrogateConfig`]).

/// The reference point bounding the hypervolume box: a point strictly
/// worse than every point it will be compared against, in both
/// (minimized) objectives.
///
/// Computed as the componentwise maximum of `points` scaled by
/// `1 + margin` (margins of a few percent keep boundary points from
/// contributing zero volume). Returns `None` when `points` is empty or
/// contains a non-finite coordinate.
pub fn reference_point<I>(points: I, margin: f64) -> Option<(f64, f64)>
where
    I: IntoIterator<Item = (f64, f64)>,
{
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    let mut any = false;
    for (x, y) in points {
        if !x.is_finite() || !y.is_finite() {
            return None;
        }
        max_x = max_x.max(x);
        max_y = max_y.max(y);
        any = true;
    }
    if !any {
        return None;
    }
    let pad = |v: f64| {
        // Scale away from zero so even all-negative or zero coordinates
        // get a strictly-worse reference.
        v + v.abs() * margin + margin.max(f64::MIN_POSITIVE)
    };
    Some((pad(max_x), pad(max_y)))
}

/// The non-dominated staircase of `points` (both objectives minimized),
/// sorted by the first objective ascending with the second strictly
/// decreasing. Exact duplicates collapse to one representative and
/// non-finite points are ignored, so the result is safe to feed to
/// [`hypervolume`] and [`improvement`].
pub fn staircase(points: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut pts: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut front: Vec<(f64, f64)> = Vec::new();
    for (x, y) in pts {
        if front.last().map_or(true, |&(_, fy)| y < fy) {
            front.push((x, y));
        }
    }
    front
}

/// Hypervolume dominated by `front` with respect to `reference`, where
/// `front` is a [`staircase`] (sorted, non-dominated). Points at or
/// beyond the reference in either objective contribute nothing; an empty
/// front has volume zero.
pub fn hypervolume(front: &[(f64, f64)], reference: (f64, f64)) -> f64 {
    let (rx, ry) = reference;
    let mut volume = 0.0;
    // Walk the staircase left to right: each point owns the horizontal
    // strip from itself to its successor (or the reference edge), the
    // full height up to the reference — strips never overlap because
    // each starts where the previous ends.
    for (i, &(x, y)) in front.iter().enumerate() {
        if x >= rx || y >= ry {
            // Outside the reference box; contributes nothing. In a true
            // staircase everything after an x-clipped point is clipped
            // too.
            continue;
        }
        let next_x = front.get(i + 1).map_or(rx, |&(nx, _)| nx.min(rx));
        let width = next_x - x;
        debug_assert!(width >= 0.0);
        volume += width * (ry - y);
    }
    volume
}

/// Convenience: hypervolume of an arbitrary point set (staircase
/// extraction included).
pub fn hypervolume_of(points: &[(f64, f64)], reference: (f64, f64)) -> f64 {
    hypervolume(&staircase(points), reference)
}

/// The exclusive hypervolume a `candidate` would add to `front` — zero
/// when the candidate is dominated by (or equal to) a front point or
/// falls outside the reference box. `front` must be a [`staircase`].
///
/// This is the acquisition score of the surrogate search: candidates are
/// ranked by the predicted-objective improvement and the top batch is
/// evaluated for real.
pub fn improvement(front: &[(f64, f64)], reference: (f64, f64), candidate: (f64, f64)) -> f64 {
    let (cx, cy) = candidate;
    let (rx, ry) = reference;
    if !cx.is_finite() || !cy.is_finite() || cx >= rx || cy >= ry {
        return 0.0;
    }
    if front.iter().any(|&(fx, fy)| fx <= cx && fy <= cy) {
        return 0.0;
    }
    // The candidate's exclusive region spans x from cx to the first front
    // point right of it; vertically it is clipped by every front point
    // left of (i.e. faster than) the candidate.
    let mut volume = 0.0;
    // Ceiling: the lowest area among front points with fx <= cx (they
    // limit how much vertical room the candidate's strip has), or the
    // reference if none.
    let mut ceil_y = ry;
    for &(fx, fy) in front {
        if fx <= cx {
            ceil_y = ceil_y.min(fy);
        }
    }
    if cy >= ceil_y {
        return 0.0;
    }
    // Walk right from the candidate through front points until one drops
    // below the candidate's area.
    let mut x = cx;
    for &(fx, fy) in front.iter().filter(|&&(fx, _)| fx > cx) {
        if fx >= rx {
            break;
        }
        volume += (fx - x) * (ceil_y - cy);
        if fy <= cy {
            return volume;
        }
        ceil_y = ceil_y.min(fy);
        x = fx;
        if cy >= ceil_y {
            return volume;
        }
    }
    volume += (rx - x) * (ceil_y - cy);
    volume
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_box() {
        let front = staircase(&[(1.0, 1.0)]);
        assert_eq!(hypervolume(&front, (3.0, 4.0)), 2.0 * 3.0);
        assert_eq!(hypervolume(&front, (1.0, 1.0)), 0.0);
        assert_eq!(hypervolume(&[], (3.0, 4.0)), 0.0);
    }

    #[test]
    fn staircase_drops_dominated_and_duplicates() {
        let s = staircase(&[
            (1.0, 5.0),
            (1.0, 5.0), // duplicate
            (2.0, 6.0), // dominated by (1,5)
            (3.0, 2.0),
            (f64::NAN, 0.0), // ignored
            (0.5, 9.0),
        ]);
        assert_eq!(s, vec![(0.5, 9.0), (1.0, 5.0), (3.0, 2.0)]);
    }

    #[test]
    fn two_point_staircase_volume() {
        // Points (1,3) and (2,1), reference (4,4):
        // strip 1: x in [1,2) at height 4-3=1 → 1
        // strip 2: x in [2,4) at height 4-1=3 → 6
        let front = staircase(&[(1.0, 3.0), (2.0, 1.0)]);
        assert_eq!(hypervolume(&front, (4.0, 4.0)), 7.0);
        assert_eq!(hypervolume_of(&[(2.0, 1.0), (1.0, 3.0)], (4.0, 4.0)), 7.0);
    }

    #[test]
    fn improvement_matches_recomputation() {
        let base = vec![(1.0, 6.0), (3.0, 4.0), (5.0, 1.0)];
        let front = staircase(&base);
        let reference = (8.0, 8.0);
        for candidate in [
            (2.0, 5.0),
            (0.5, 7.0),
            (6.0, 0.5),
            (4.0, 2.0),
            (2.0, 3.5),
            (0.1, 0.1),
            (7.9, 7.9),
            (3.0, 4.0), // exact duplicate → 0
            (4.0, 5.0), // dominated → 0
            (9.0, 0.0), // outside reference → 0
            (f64::NAN, 1.0),
        ] {
            let inc = improvement(&front, reference, candidate);
            let mut all = base.clone();
            all.push(candidate);
            let recomputed = hypervolume_of(&all, reference) - hypervolume(&front, reference);
            assert!(
                (inc - recomputed).abs() < 1e-9,
                "candidate {candidate:?}: incremental {inc} vs recomputed {recomputed}"
            );
        }
    }

    #[test]
    fn improvement_of_empty_front_is_candidate_box() {
        assert_eq!(improvement(&[], (4.0, 4.0), (1.0, 1.0)), 9.0);
        assert_eq!(improvement(&[], (4.0, 4.0), (4.0, 1.0)), 0.0);
    }

    #[test]
    fn reference_point_pads_the_maxima() {
        let r = reference_point([(1.0, 10.0), (5.0, 2.0)], 0.05).unwrap();
        assert!(r.0 > 5.0 && r.1 > 10.0);
        assert!(reference_point([], 0.05).is_none());
        assert!(reference_point([(f64::NAN, 1.0)], 0.05).is_none());
        // Zero maxima still produce a strictly-worse reference.
        let z = reference_point([(0.0, 0.0)], 0.05).unwrap();
        assert!(z.0 > 0.0 && z.1 > 0.0);
    }
}
