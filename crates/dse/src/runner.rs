//! The resilient parallel sweep runner.
//!
//! The paper's DSE practicality argument (§IV-C) rests on evaluating up
//! to 75 000 design points per benchmark; this module makes that sweep a
//! long-running job that survives bad points instead of a fragile serial
//! loop. Design points are fanned out over a [`std::thread::scope`]
//! work-stealing pool (the same pattern as `dhdl-cpu`'s kernels), every
//! point is evaluated under [`std::panic::catch_unwind`] isolation with a
//! bounded retry budget, failures land in a structured
//! [`PointOutcome`]/[`DseError`] taxonomy instead of being silently
//! discarded, and an optional wall-clock deadline degrades the sweep
//! gracefully to a partial-but-valid result flagged `truncated`.
//!
//! Results are deterministic across thread counts: outcomes are keyed by
//! sample index and reassembled in sample order, so the same seed yields
//! the same points — and therefore the same Pareto front — whether the
//! sweep ran on 1 thread or 16.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use dhdl_core::{Design, NodeKind, ParamValues};
use dhdl_estimate::{Estimate, Estimator};
use dhdl_target::Platform;

use crate::cache::CacheStats;
use crate::checkpoint::Checkpoint;
use crate::search::{DesignPoint, DseOptions};

/// A cost model the sweep runner can query for design estimates.
///
/// [`Estimator`] is the production implementation; the fault-injection
/// harness ([`crate::FaultInjector`]) wraps one to exercise the runner's
/// isolation, retry and deadline paths in tests, and
/// [`crate::CachedModel`] wraps either with a memoizing estimate cache.
pub trait CostModel: Sync {
    /// Estimate cycles and area for a design instance.
    fn estimate(&self, design: &Design) -> Estimate;
    /// The platform the estimates target (used for the fits-on-device
    /// check).
    fn platform(&self) -> &Platform;
    /// Counters of the estimate cache backing this model, if any; the
    /// runner snapshots them around each sweep so reports can print hit
    /// rates. Models without a cache return `None` (the default).
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// The memoized estimate for a parameter-assignment key (see
    /// [`crate::params_key`]), if this model has one. This is the
    /// warm-sweep fast path: a `Some` answer lets the runner skip design
    /// construction and hashing entirely, which together cost several
    /// times more than a memoized estimate. Models without a cache
    /// return `None` (the default).
    fn lookup_params(&self, params_key: u64) -> Option<Estimate> {
        let _ = params_key;
        None
    }

    /// Estimate `design`, remembering (when `params_key` is `Some` and
    /// the model has a cache) that this parameter key builds this design,
    /// so later sweeps can answer it via [`CostModel::lookup_params`].
    /// The default ignores the key and delegates to
    /// [`CostModel::estimate`].
    fn estimate_keyed(&self, params_key: Option<u64>, design: &Design) -> Estimate {
        let _ = params_key;
        self.estimate(design)
    }

    /// Estimate `design` across up to `k` identical devices — the
    /// `num_fpgas` DSE axis. `k <= 1` must be bit-identical to
    /// [`CostModel::estimate_keyed`] (the partitioning pass is never
    /// consulted for single-chip points). The default ignores the device
    /// count and scores the whole design on one chip; models that
    /// understand partitioning ([`Estimator`] via
    /// `Estimator::estimate_partitioned`, [`crate::CachedModel`] with a
    /// device-salted cache key) override it.
    fn estimate_devices(&self, params_key: Option<u64>, design: &Design, k: u32) -> Estimate {
        let _ = k;
        self.estimate_keyed(params_key, design)
    }
}

impl CostModel for Estimator {
    fn estimate(&self, design: &Design) -> Estimate {
        Estimator::estimate(self, design)
    }

    fn platform(&self) -> &Platform {
        Estimator::platform(self)
    }

    fn estimate_devices(&self, _params_key: Option<u64>, design: &Design, k: u32) -> Estimate {
        if k <= 1 {
            Estimator::estimate(self, design)
        } else {
            self.estimate_partitioned(design, k).estimate
        }
    }
}

impl<T: CostModel + ?Sized> CostModel for &T {
    fn estimate(&self, design: &Design) -> Estimate {
        (**self).estimate(design)
    }

    fn platform(&self) -> &Platform {
        (**self).platform()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        (**self).cache_stats()
    }

    fn lookup_params(&self, params_key: u64) -> Option<Estimate> {
        (**self).lookup_params(params_key)
    }

    fn estimate_keyed(&self, params_key: Option<u64>, design: &Design) -> Estimate {
        (**self).estimate_keyed(params_key, design)
    }

    fn estimate_devices(&self, params_key: Option<u64>, design: &Design, k: u32) -> Estimate {
        (**self).estimate_devices(params_key, design, k)
    }
}

/// Why a sampled design point produced no estimate.
#[derive(Debug, Clone, PartialEq)]
pub enum DseError {
    /// The benchmark metaprogram rejected the parameter assignment.
    Build(String),
    /// A local memory exceeded the per-buffer size cap (§IV-C).
    MemCap {
        /// Size of the largest offending buffer in bits.
        bits: u64,
        /// The configured cap in bits.
        cap_bits: u64,
    },
    /// Building or estimating the point panicked on every attempt.
    Panic {
        /// Attempts made (1 + retries).
        attempts: u32,
        /// The final panic payload, when it carried a message.
        message: String,
    },
    /// The estimator returned a non-finite cycle count or area on every
    /// attempt.
    NonFinite {
        /// Attempts made (1 + retries).
        attempts: u32,
    },
}

impl std::fmt::Display for DseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DseError::Build(msg) => write!(f, "build failed: {msg}"),
            DseError::MemCap { bits, cap_bits } => {
                write!(f, "memory cap exceeded: {bits} bits > {cap_bits} bits")
            }
            DseError::Panic { attempts, message } => {
                write!(f, "panicked on all {attempts} attempts: {message}")
            }
            DseError::NonFinite { attempts } => {
                write!(f, "non-finite estimate on all {attempts} attempts")
            }
        }
    }
}

/// The outcome of one sampled design point.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome {
    /// The point was estimated successfully.
    Evaluated {
        /// The evaluated point.
        point: DesignPoint,
        /// Attempts needed (> 1 means transient failures were retried).
        attempts: u32,
    },
    /// The point was discarded, with the reason recorded.
    Discarded(DseError),
    /// The deadline expired before the point was claimed; a resumed run
    /// picks it up from the checkpoint.
    Skipped,
}

/// Per-category accounting of sweep outcomes, replacing the old opaque
/// `discarded` scalar so silent point loss is visible in summaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Points estimated successfully.
    pub evaluated: usize,
    /// Points whose metaprogram rejected the parameters.
    pub build_failed: usize,
    /// Points violating the local-memory cap.
    pub mem_cap: usize,
    /// Points that panicked or stayed non-finite through all retries.
    pub eval_failed: usize,
    /// Evaluated points that needed more than one attempt (transient
    /// faults absorbed by the retry budget).
    pub recovered: usize,
    /// Points never evaluated because the deadline expired.
    pub skipped: usize,
}

impl OutcomeCounts {
    /// Total points discarded before estimation (the old `discarded`
    /// scalar: build failures + memory-cap violations + evaluation
    /// failures).
    pub fn discarded(&self) -> usize {
        self.build_failed + self.mem_cap + self.eval_failed
    }

    /// One-line human-readable summary for sweep reports.
    pub fn summary(&self) -> String {
        format!(
            "evaluated {} (recovered {}), discarded {} (build {} / mem-cap {} / eval {}), skipped {}",
            self.evaluated,
            self.recovered,
            self.discarded(),
            self.build_failed,
            self.mem_cap,
            self.eval_failed,
            self.skipped
        )
    }

    fn record(&mut self, outcome: &PointOutcome) {
        match outcome {
            PointOutcome::Evaluated { attempts, .. } => {
                self.evaluated += 1;
                if *attempts > 1 {
                    self.recovered += 1;
                    dhdl_obs::counter!("dse.points.recovered").incr();
                }
                dhdl_obs::counter!("dse.points.evaluated").incr();
            }
            PointOutcome::Discarded(DseError::Build(_)) => {
                self.build_failed += 1;
                dhdl_obs::counter!("dse.points.build_failed").incr();
            }
            PointOutcome::Discarded(DseError::MemCap { .. }) => {
                self.mem_cap += 1;
                dhdl_obs::counter!("dse.points.mem_cap").incr();
            }
            PointOutcome::Discarded(DseError::Panic { .. }) => {
                self.eval_failed += 1;
                dhdl_obs::counter!("dse.points.panicked").incr();
            }
            PointOutcome::Discarded(DseError::NonFinite { .. }) => {
                self.eval_failed += 1;
                dhdl_obs::counter!("dse.points.non_finite").incr();
            }
            PointOutcome::Skipped => {
                self.skipped += 1;
                dhdl_obs::counter!("dse.points.deadline_skipped").incr();
            }
        }
    }

    /// Tally a slice of outcomes.
    pub(crate) fn tally(outcomes: &[PointOutcome]) -> Self {
        let mut counts = OutcomeCounts::default();
        for o in outcomes {
            counts.record(o);
        }
        counts
    }
}

/// Performance accounting for one sweep: wall-clock time, throughput
/// and (when the cost model carries one) estimate-cache counters.
///
/// Deliberately excluded from [`crate::DseResult`]'s equality: two
/// sweeps that produce identical points are equal regardless of how
/// fast they ran or how many cache hits they took.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SweepStats {
    /// Wall-clock seconds spent evaluating points.
    pub elapsed_secs: f64,
    /// Points successfully evaluated in this sweep.
    pub evaluated: usize,
    /// Per-sweep estimate-cache counter deltas, when the model has a
    /// cache ([`CostModel::cache_stats`]).
    pub cache: Option<CacheStats>,
}

impl SweepStats {
    /// Evaluated points per wall-clock second (0 for an instant sweep).
    pub fn points_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.evaluated as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// Fold a later batch's stats into this one (refinement rounds add
    /// onto the exploration sweep): times and counts accumulate, and the
    /// later cache snapshot wins.
    pub fn absorb(&mut self, later: SweepStats) {
        self.elapsed_secs += later.elapsed_secs;
        self.evaluated += later.evaluated;
        if let Some(c) = later.cache {
            self.cache = Some(match self.cache {
                Some(prev) => CacheStats {
                    hits: prev.hits + c.hits,
                    misses: prev.misses + c.misses,
                    inserts: prev.inserts + c.inserts,
                    entries: c.entries,
                },
                None => c,
            });
        }
    }

    /// One-line human-readable summary for sweep reports.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} points in {:.2}s ({:.0} points/s)",
            self.evaluated,
            self.elapsed_secs,
            self.points_per_sec()
        );
        if let Some(c) = self.cache {
            s.push_str(&format!(
                ", cache {} hits / {} misses ({:.0}% hit rate, {} entries)",
                c.hits,
                c.misses,
                c.hit_rate() * 100.0,
                c.entries
            ));
        }
        s
    }
}

/// Resolve a thread-count request (0 = all available cores).
pub(crate) fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Evaluate `samples` in parallel, one [`PointOutcome`] per input index,
/// plus the sweep's timing and cache accounting.
///
/// Indices present in `checkpoint`'s completed set are reused without
/// re-evaluation; freshly computed outcomes are appended to the
/// checkpoint as they finish. When `deadline` passes, workers stop
/// claiming points and the unclaimed remainder comes back as
/// [`PointOutcome::Skipped`].
pub(crate) fn evaluate_points<F, E>(
    build: &F,
    estimator: &E,
    samples: &[ParamValues],
    opts: &DseOptions,
    deadline: Option<Instant>,
    checkpoint: Option<&Checkpoint>,
) -> (Vec<PointOutcome>, SweepStats)
where
    F: Fn(&ParamValues) -> dhdl_core::Result<Design> + Sync,
    E: CostModel + ?Sized,
{
    let batch: Vec<(usize, &ParamValues)> = samples.iter().enumerate().collect();
    evaluate_indexed(build, estimator, &batch, opts, deadline, checkpoint)
}

/// Evaluate an explicitly-keyed batch in parallel, one [`PointOutcome`]
/// per input position. Each item carries its own checkpoint key, so
/// callers that dispatch points out of sample order (the surrogate
/// strategy's acquisition batches) still get stable checkpoint records:
/// `batch[i].0` is looked up in — and appended to — the checkpoint, while
/// the returned vector stays positional (`outcomes[i]` belongs to
/// `batch[i]`).
pub(crate) fn evaluate_indexed<F, E>(
    build: &F,
    estimator: &E,
    batch: &[(usize, &ParamValues)],
    opts: &DseOptions,
    deadline: Option<Instant>,
    checkpoint: Option<&Checkpoint>,
) -> (Vec<PointOutcome>, SweepStats)
where
    F: Fn(&ParamValues) -> dhdl_core::Result<Design> + Sync,
    E: CostModel + ?Sized,
{
    let _span = dhdl_obs::span_arg("dse.evaluate", "points", batch.len() as u64);
    let start = Instant::now();
    let cache_before = estimator.cache_stats();
    let n = batch.len();
    let threads = resolve_threads(opts.threads).min(n.max(1));
    let next = AtomicUsize::new(0);
    let done = checkpoint.map(Checkpoint::completed);
    let per_worker: Vec<Vec<(usize, PointOutcome)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    // The worker span covers claim-to-exit wall-clock; the
                    // per-point eval histogram is the busy portion, so
                    // idle = worker span − Σ eval_ns.
                    let _wspan = dhdl_obs::span!("dse.worker");
                    let mut local = Vec::new();
                    loop {
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            dhdl_obs::counter!("dse.worker.deadline_stop").incr();
                            break;
                        }
                        let pos = next.fetch_add(1, Ordering::Relaxed);
                        if pos >= n {
                            break;
                        }
                        let (key, params) = batch[pos];
                        if let Some(prev) = done.as_ref().and_then(|d| d.get(&key)) {
                            dhdl_obs::counter!("dse.points.checkpoint_reuse").incr();
                            local.push((pos, prev.clone()));
                            continue;
                        }
                        let outcome = {
                            let _t = dhdl_obs::histogram!("dse.point.eval_ns").timer();
                            evaluate_one(build, estimator, params, opts)
                        };
                        if let Some(ckpt) = checkpoint {
                            ckpt.append(key, &outcome);
                        }
                        local.push((pos, outcome));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked outside isolation"))
            .collect()
    });
    let mut outcomes = vec![PointOutcome::Skipped; n];
    for (i, outcome) in per_worker.into_iter().flatten() {
        outcomes[i] = outcome;
    }
    let stats = SweepStats {
        elapsed_secs: start.elapsed().as_secs_f64(),
        evaluated: outcomes
            .iter()
            .filter(|o| matches!(o, PointOutcome::Evaluated { .. }))
            .count(),
        cache: estimator.cache_stats().map(|after| match cache_before {
            Some(before) => after.since(&before),
            None => after,
        }),
    };
    (outcomes, stats)
}

/// What one isolated evaluation attempt produced.
enum Attempt {
    Point(DesignPoint),
    Build(String),
    MemCap { bits: u64, cap_bits: u64 },
    NonFinite,
}

/// Evaluate a single design point under panic isolation with a bounded
/// retry budget. Deterministic failures (build errors, memory-cap
/// violations) are never retried; panics and non-finite estimates are
/// retried up to `opts.retries` extra times so transient faults do not
/// cost the sweep a point.
fn evaluate_one<F, E>(
    build: &F,
    estimator: &E,
    params: &ParamValues,
    opts: &DseOptions,
) -> PointOutcome
where
    F: Fn(&ParamValues) -> dhdl_core::Result<Design> + Sync,
    E: CostModel + ?Sized,
{
    // Warm fast path: a memoized parameter key skips design construction
    // and structural hashing outright. Only successfully evaluated
    // (finite, under-mem-cap) assignments ever enter the memo, and the
    // memoized estimate is the bit-exact one the full path would compute,
    // so outcomes and counts match a cold sweep (`recovered` aside —
    // hits bypass transient faults, as all cache hits do).
    let params_key = opts
        .cache_salt
        .map(|salt| crate::cache::params_key(salt, params));
    // The device count is an ordinary parameter of the assignment
    // (`num_fpgas`, absent on single-chip spaces), so it is already part
    // of `params_key` — the warm fast path below distinguishes device
    // counts for free.
    let devices = params
        .get(dhdl_core::NUM_FPGAS)
        .map_or(1, |v| v.clamp(1, u64::from(u32::MAX)) as u32);
    if let Some(pk) = params_key {
        if let Some(est) = estimator.lookup_params(pk) {
            let valid = est.area.fits(&estimator.platform().fpga);
            return PointOutcome::Evaluated {
                point: DesignPoint {
                    params: params.clone(),
                    cycles: est.cycles,
                    area: est.area,
                    valid,
                },
                attempts: 1,
            };
        }
    }
    let max_attempts = opts.retries.saturating_add(1);
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let result = catch_unwind(AssertUnwindSafe(|| {
            let design = match build(params) {
                Ok(d) => d,
                Err(e) => return Attempt::Build(e.to_string()),
            };
            if let Some(bits) = mem_cap_violation(&design, opts.mem_cap_bits) {
                return Attempt::MemCap {
                    bits,
                    cap_bits: opts.mem_cap_bits,
                };
            }
            let est = estimator.estimate_devices(params_key, &design, devices);
            if !estimate_is_finite(&est) {
                return Attempt::NonFinite;
            }
            let valid = est.area.fits(&estimator.platform().fpga);
            Attempt::Point(DesignPoint {
                params: params.clone(),
                cycles: est.cycles,
                area: est.area,
                valid,
            })
        }));
        match result {
            Ok(Attempt::Point(point)) => {
                return PointOutcome::Evaluated { point, attempts };
            }
            Ok(Attempt::Build(msg)) => {
                return PointOutcome::Discarded(DseError::Build(msg));
            }
            Ok(Attempt::MemCap { bits, cap_bits }) => {
                return PointOutcome::Discarded(DseError::MemCap { bits, cap_bits });
            }
            Ok(Attempt::NonFinite) => {
                if attempts >= max_attempts {
                    return PointOutcome::Discarded(DseError::NonFinite { attempts });
                }
                dhdl_obs::counter!("dse.retries.non_finite").incr();
            }
            Err(payload) => {
                if attempts >= max_attempts {
                    return PointOutcome::Discarded(DseError::Panic {
                        attempts,
                        message: panic_message(payload.as_ref()),
                    });
                }
                dhdl_obs::counter!("dse.retries.panic").incr();
            }
        }
    }
}

fn estimate_is_finite(est: &Estimate) -> bool {
    est.cycles.is_finite()
        && est.area.alms.is_finite()
        && est.area.regs.is_finite()
        && est.area.dsps.is_finite()
        && est.area.brams.is_finite()
}

/// Size in bits of the largest local memory exceeding `cap_bits`, if any.
fn mem_cap_violation(design: &Design, cap_bits: u64) -> Option<u64> {
    design
        .iter()
        .filter_map(|(_, n)| match &n.kind {
            NodeKind::Bram(b) => Some(b.elements() * u64::from(n.ty.bits())),
            _ => None,
        })
        .filter(|&bits| bits > cap_bits)
        .max()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "(non-string panic payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::{DType, DesignBuilder, ParamSpace};
    use dhdl_target::Platform;

    fn tiny_build(p: &ParamValues) -> dhdl_core::Result<Design> {
        let n = 256u64;
        let tile = p.dim("tile")?;
        let mut b = DesignBuilder::new("tiny");
        let x = b.off_chip("x", DType::F32, &[n]);
        b.sequential(|b| {
            let acc = b.reg("acc", DType::F32, 0.0);
            b.outer(false, &[dhdl_core::by(n, tile)], 1, |b, iters| {
                let i = iters[0];
                let t = b.bram("t", DType::F32, &[tile]);
                b.tile_load(x, t, &[i], &[tile], 1);
                b.pipe_reduce(
                    &[dhdl_core::by(tile, 1)],
                    1,
                    acc,
                    dhdl_core::ReduceOp::Add,
                    |b, it| {
                        let v = b.load(t, &[it[0]]);
                        b.mul(v, v)
                    },
                );
            });
        });
        b.finish()
    }

    fn space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.tile("tile", 256, 4, 64);
        s
    }

    fn estimator() -> Estimator {
        Estimator::calibrate_with(&Platform::maia(), 20, 7).0
    }

    #[test]
    fn panicking_build_is_isolated_and_recorded() {
        let est = estimator();
        let opts = DseOptions {
            retries: 1,
            ..DseOptions::default()
        };
        let samples: Vec<ParamValues> = space()
            .defs()
            .iter()
            .flat_map(|d| d.kind.legal_values())
            .map(|v| ParamValues::new().with("tile", v))
            .collect();
        let panic_on = samples[1].clone();
        let build = |p: &ParamValues| {
            assert!(p != &panic_on, "injected build panic");
            tiny_build(p)
        };
        let (outcomes, stats) = evaluate_points(&build, &est, &samples, &opts, None, None);
        assert_eq!(outcomes.len(), samples.len());
        assert_eq!(stats.evaluated, samples.len() - 1);
        assert!(stats.elapsed_secs >= 0.0);
        // A bare Estimator carries no cache.
        assert!(stats.cache.is_none());
        let counts = OutcomeCounts::tally(&outcomes);
        assert_eq!(counts.eval_failed, 1);
        assert_eq!(counts.evaluated, samples.len() - 1);
        match &outcomes[1] {
            PointOutcome::Discarded(DseError::Panic { attempts, message }) => {
                assert_eq!(*attempts, 2);
                assert!(message.contains("injected build panic"), "{message}");
            }
            other => panic!("expected panic outcome, got {other:?}"),
        }
    }

    #[test]
    fn sweep_stats_absorb_and_summary() {
        let mut a = SweepStats {
            elapsed_secs: 2.0,
            evaluated: 100,
            cache: None,
        };
        assert_eq!(a.points_per_sec(), 50.0);
        a.absorb(SweepStats {
            elapsed_secs: 1.0,
            evaluated: 20,
            cache: Some(CacheStats {
                hits: 15,
                misses: 5,
                inserts: 5,
                entries: 5,
            }),
        });
        assert_eq!(a.evaluated, 120);
        assert_eq!(a.elapsed_secs, 3.0);
        assert_eq!(a.cache.unwrap().hits, 15);
        a.absorb(SweepStats {
            elapsed_secs: 0.0,
            evaluated: 0,
            cache: Some(CacheStats {
                hits: 5,
                misses: 0,
                inserts: 0,
                entries: 5,
            }),
        });
        assert_eq!(a.cache.unwrap().hits, 20);
        let s = a.summary();
        assert!(s.contains("120 points"), "{s}");
        assert!(s.contains("cache 20 hits / 5 misses"), "{s}");
        assert_eq!(SweepStats::default().points_per_sec(), 0.0);
    }

    #[test]
    fn counts_summary_mentions_every_category() {
        let counts = OutcomeCounts {
            evaluated: 5,
            build_failed: 1,
            mem_cap: 2,
            eval_failed: 3,
            recovered: 4,
            skipped: 6,
        };
        assert_eq!(counts.discarded(), 6);
        let s = counts.summary();
        for needle in [
            "evaluated 5",
            "build 1",
            "mem-cap 2",
            "eval 3",
            "recovered 4",
            "skipped 6",
        ] {
            assert!(s.contains(needle), "{s} missing {needle}");
        }
    }
}
