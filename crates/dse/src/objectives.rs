//! Ranking objectives over explored design points.
//!
//! The paper evaluates designs "in terms of performance and
//! performance-per-area" (§I contributions). Besides the (cycles, ALMs)
//! Pareto frontier, this module ranks points by throughput per resource
//! and extracts per-resource frontiers matching each panel of Figure 5.

use crate::pareto::pareto_front;
use crate::search::{DesignPoint, DseResult};
use dhdl_target::FpgaTarget;

/// The resource axis of a Figure 5 panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceAxis {
    /// Adaptive logic modules (panels A, D, G, ...).
    Alms,
    /// DSP blocks (panels B, E, H, ...).
    Dsps,
    /// Block RAMs (panels C, F, I, ...).
    Brams,
}

impl ResourceAxis {
    /// Extract the axis value from a design point.
    pub fn of(self, p: &DesignPoint) -> f64 {
        match self {
            ResourceAxis::Alms => p.area.alms,
            ResourceAxis::Dsps => p.area.dsps,
            ResourceAxis::Brams => p.area.brams,
        }
    }

    /// The device capacity along this axis.
    pub fn capacity(self, target: &FpgaTarget) -> f64 {
        match self {
            ResourceAxis::Alms => target.alms as f64,
            ResourceAxis::Dsps => target.dsps as f64,
            ResourceAxis::Brams => target.brams as f64,
        }
    }
}

/// Pareto frontier of a result along `(cycles, axis)` — the highlighted
/// points of one Figure 5 panel.
pub fn frontier_along(result: &DseResult, axis: ResourceAxis) -> Vec<usize> {
    let tuples: Vec<(f64, f64, bool)> = result
        .points
        .iter()
        .map(|p| (p.cycles, axis.of(p), p.valid))
        .collect();
    pareto_front(&tuples)
}

/// Performance-per-area score of a point: inverse of `cycles × alms`
/// (higher is better). Invalid points score zero.
pub fn perf_per_area(p: &DesignPoint) -> f64 {
    if !p.valid || p.cycles <= 0.0 || p.area.alms <= 0.0 {
        0.0
    } else {
        1.0 / (p.cycles * p.area.alms)
    }
}

/// Indices of the evaluated points ranked by performance-per-area,
/// best first.
pub fn rank_by_perf_per_area(result: &DseResult) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..result.points.len()).collect();
    idx.sort_by(|&a, &b| {
        perf_per_area(&result.points[b]).total_cmp(&perf_per_area(&result.points[a]))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::ParamValues;
    use dhdl_target::AreaReport;

    fn point(cycles: f64, alms: f64, dsps: f64, brams: f64, valid: bool) -> DesignPoint {
        DesignPoint {
            params: ParamValues::new(),
            cycles,
            area: AreaReport {
                alms,
                regs: alms * 2.0,
                dsps,
                brams,
            },
            valid,
        }
    }

    fn result(points: Vec<DesignPoint>) -> DseResult {
        let tuples: Vec<(f64, f64, bool)> = points
            .iter()
            .map(|p| (p.cycles, p.area.alms, p.valid))
            .collect();
        let pareto = pareto_front(&tuples);
        DseResult {
            points,
            pareto,
            space_size: 0,
            discarded: 0,
            counts: crate::OutcomeCounts::default(),
            errors: Vec::new(),
            truncated: false,
            stats: crate::SweepStats::default(),
        }
    }

    #[test]
    fn per_axis_frontiers_differ() {
        // Point 1 is ALM-cheap but DSP-hungry; point 2 the reverse.
        let r = result(vec![
            point(100.0, 10.0, 90.0, 5.0, true),
            point(100.0, 90.0, 10.0, 5.0, true),
            point(50.0, 95.0, 95.0, 9.0, true),
        ]);
        let alm_front = frontier_along(&r, ResourceAxis::Alms);
        let dsp_front = frontier_along(&r, ResourceAxis::Dsps);
        assert!(alm_front.contains(&0));
        assert!(!alm_front.contains(&1));
        assert!(dsp_front.contains(&1));
        assert!(!dsp_front.contains(&0));
        // The fastest point leads both frontiers.
        assert_eq!(alm_front[0], 2);
        assert_eq!(dsp_front[0], 2);
    }

    #[test]
    fn perf_per_area_prefers_small_fast_designs() {
        let small_fast = point(100.0, 10.0, 1.0, 1.0, true);
        let big_fast = point(90.0, 1000.0, 1.0, 1.0, true);
        assert!(perf_per_area(&small_fast) > perf_per_area(&big_fast));
        assert_eq!(perf_per_area(&point(10.0, 10.0, 1.0, 1.0, false)), 0.0);
    }

    #[test]
    fn ranking_is_descending() {
        let r = result(vec![
            point(100.0, 100.0, 0.0, 0.0, true),
            point(10.0, 10.0, 0.0, 0.0, true),
            point(50.0, 50.0, 0.0, 0.0, false),
        ]);
        let ranked = rank_by_perf_per_area(&r);
        assert_eq!(ranked[0], 1);
        assert_eq!(*ranked.last().unwrap(), 2); // invalid last
    }

    #[test]
    fn axis_capacity_reads_target() {
        let t = FpgaTarget::stratix_v();
        assert_eq!(ResourceAxis::Alms.capacity(&t), t.alms as f64);
        assert_eq!(ResourceAxis::Dsps.capacity(&t), t.dsps as f64);
        assert_eq!(ResourceAxis::Brams.capacity(&t), t.brams as f64);
    }
}
