//! Deterministic fault injection for the sweep runner.
//!
//! The runner's panic isolation, retry and deadline paths are worthless
//! if nothing ever exercises them, so this harness ships with the crate:
//! [`FaultInjector`] wraps any [`CostModel`] and injects panics, NaN
//! estimates and latency spikes at configurable rates. Injection
//! decisions are *seed-driven and keyed by design hash*, not by call
//! order, so a given (seed, design) pair faults identically regardless
//! of thread count, evaluation order, or how many other designs the
//! sweep contains — which is what lets tests assert that a faulty sweep
//! produces the exact Pareto front of a fault-free one.
//!
//! By default faults are *transient*: a design faults on its first
//! evaluation attempt and succeeds on retry, modeling the flaky-point
//! behavior the retry budget exists for. Set
//! [`FaultConfig::transient`] to `false` for hard faults that exhaust
//! the retries and land in [`crate::DseError`] records instead.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use dhdl_core::{structural_hash, Design};
use dhdl_estimate::Estimate;
use dhdl_target::Platform;

use crate::runner::CostModel;

/// Fault rates and behavior for a [`FaultInjector`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed mixed into every injection decision.
    pub seed: u64,
    /// Fraction of designs whose evaluation panics, in `[0, 1]`.
    pub panic_rate: f64,
    /// Fraction of designs whose estimate comes back NaN, in `[0, 1]`.
    pub nan_rate: f64,
    /// Fraction of designs whose evaluation stalls for
    /// [`FaultConfig::spike`], in `[0, 1]`.
    pub spike_rate: f64,
    /// Stall duration for latency-spike faults.
    pub spike: Duration,
    /// When `true` (the default), a design faults only on its first
    /// evaluation attempt and recovers on retry; when `false`, it faults
    /// on every attempt.
    pub transient: bool,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xFA17,
            panic_rate: 0.0,
            nan_rate: 0.0,
            spike_rate: 0.0,
            spike: Duration::from_millis(10),
            transient: true,
        }
    }
}

/// The faults planned for one design under a given config (pure,
/// order-independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Evaluation will panic.
    pub panic: bool,
    /// The estimate's cycle count will be NaN.
    pub nan: bool,
    /// Evaluation will stall for the configured spike duration.
    pub spike: bool,
}

/// Counts of faults actually injected so far, in injection order
/// `(panics, nans, spikes)`.
pub type InjectionCounts = (usize, usize, usize);

/// A [`CostModel`] wrapper injecting deterministic, seed-driven faults.
#[derive(Debug)]
pub struct FaultInjector<'a, E: CostModel> {
    inner: &'a E,
    cfg: FaultConfig,
    /// Injected-fault count per design hash, for transient recovery.
    injected_for: Mutex<HashMap<u64, u32>>,
    panics: AtomicUsize,
    nans: AtomicUsize,
    spikes: AtomicUsize,
}

impl<'a, E: CostModel> FaultInjector<'a, E> {
    /// Wrap `inner` with fault injection per `cfg`.
    pub fn new(inner: &'a E, cfg: FaultConfig) -> Self {
        FaultInjector {
            inner,
            cfg,
            injected_for: Mutex::new(HashMap::new()),
            panics: AtomicUsize::new(0),
            nans: AtomicUsize::new(0),
            spikes: AtomicUsize::new(0),
        }
    }

    /// The faults this injector will plan for `design` — independent of
    /// evaluation order and of any other design in the sweep.
    pub fn plan(&self, design: &Design) -> FaultPlan {
        self.plan_for_hash(structural_hash(design))
    }

    fn plan_for_hash(&self, h: u64) -> FaultPlan {
        FaultPlan {
            panic: decide(h, self.cfg.seed, 0x70A1C, self.cfg.panic_rate),
            nan: decide(h, self.cfg.seed, 0x0A0A0, self.cfg.nan_rate),
            spike: decide(h, self.cfg.seed, 0x571CE, self.cfg.spike_rate),
        }
    }

    /// Total faults injected so far as `(panics, nans, spikes)`.
    pub fn injected(&self) -> InjectionCounts {
        (
            self.panics.load(Ordering::Relaxed),
            self.nans.load(Ordering::Relaxed),
            self.spikes.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct designs that have had at least one fault
    /// injected (panic or NaN) — the count a resilient sweep should
    /// report as `recovered` when faults are transient.
    pub fn faulted_designs(&self) -> usize {
        self.injected_for
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Should a planned fault fire for design hash `h` now? Transient
    /// faults fire only while the design has no prior injections.
    fn armed(&self, h: u64) -> bool {
        if !self.cfg.transient {
            return true;
        }
        let map = self.injected_for.lock().unwrap_or_else(|e| e.into_inner());
        !map.contains_key(&h)
    }

    fn note_injection(&self, h: u64) {
        *self
            .injected_for
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(h)
            .or_insert(0) += 1;
    }
}

impl<E: CostModel> FaultInjector<'_, E> {
    /// Run the inner estimate `f` under this design's fault plan —
    /// shared by the single-chip and multi-device entry points so a
    /// design faults identically whichever path evaluates it.
    fn with_faults(&self, design: &Design, f: impl FnOnce() -> Estimate) -> Estimate {
        let h = structural_hash(design);
        let plan = self.plan_for_hash(h);
        let armed = self.armed(h);
        if plan.spike && armed {
            self.spikes.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.cfg.spike);
        }
        if plan.panic && armed {
            self.note_injection(h);
            self.panics.fetch_add(1, Ordering::Relaxed);
            panic!("injected estimator fault (design hash {h:#x})");
        }
        let mut est = f();
        if plan.nan && armed {
            self.note_injection(h);
            self.nans.fetch_add(1, Ordering::Relaxed);
            est.cycles = f64::NAN;
        }
        est
    }
}

impl<E: CostModel> CostModel for FaultInjector<'_, E> {
    fn estimate(&self, design: &Design) -> Estimate {
        self.with_faults(design, || self.inner.estimate(design))
    }

    fn estimate_devices(&self, params_key: Option<u64>, design: &Design, k: u32) -> Estimate {
        self.with_faults(design, || {
            self.inner.estimate_devices(params_key, design, k)
        })
    }

    fn platform(&self) -> &Platform {
        self.inner.platform()
    }

    fn cache_stats(&self) -> Option<crate::CacheStats> {
        self.inner.cache_stats()
    }
}

/// Order-independent Bernoulli draw: mix the design hash, the seed and a
/// per-fault-class salt through SplitMix64 finalization and compare the
/// top 53 bits against `rate`.
fn decide(hash: u64, seed: u64, salt: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let mut z = hash ^ seed.rotate_left(17) ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    unit < rate
}

/// Run `f` with the global panic hook silenced (and restored afterwards,
/// even if `f` itself unwinds).
///
/// The runner isolates injected panics with `catch_unwind`, but the
/// default hook would still print a backtrace banner per injection;
/// tests exercising high fault rates wrap the sweep in this to keep
/// their output readable. Callers are serialized on a global lock
/// because the hook is process-wide.
pub fn with_silent_panics<R>(f: impl FnOnce() -> R) -> R {
    static HOOK_LOCK: Mutex<()> = Mutex::new(());
    let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    std::panic::set_hook(prev);
    match out {
        Ok(r) => r,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_is_deterministic_and_rate_bounded() {
        let mut hits = 0usize;
        let n = 20_000;
        for h in 0..n as u64 {
            assert_eq!(decide(h, 7, 3, 0.25), decide(h, 7, 3, 0.25));
            if decide(h, 7, 3, 0.25) {
                hits += 1;
            }
            assert!(!decide(h, 7, 3, 0.0));
            assert!(decide(h, 7, 3, 1.0));
        }
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "hit rate {frac}");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let hit = |seed: u64| (0..1000u64).filter(|&h| decide(h, seed, 1, 0.3)).count();
        // Not a strict requirement on any single pair, but these seeds
        // must not produce the identical schedule.
        let a: Vec<bool> = (0..1000u64).map(|h| decide(h, 1, 1, 0.3)).collect();
        let b: Vec<bool> = (0..1000u64).map(|h| decide(h, 2, 1, 0.3)).collect();
        assert_ne!(a, b);
        assert!(hit(1) > 0 && hit(2) > 0);
    }

    #[test]
    fn silent_panics_restores_hook_on_unwind() {
        let result = std::panic::catch_unwind(|| {
            with_silent_panics(|| panic!("inner"));
        });
        assert!(result.is_err());
        // If the hook was not restored, this would be silent; we cannot
        // easily observe output here, but the call must still work.
        with_silent_panics(|| 42);
    }
}
