//! Pareto frontier extraction over (runtime, area).

/// Indices of the Pareto-optimal points minimizing both objectives
/// `(cycles, area)`. Invalid points never appear on the frontier.
///
/// Matches the paper's Figure 5, which highlights "Pareto-optimal designs
/// along the dimensions of execution time and ALM utilization".
pub fn pareto_front(points: &[(f64, f64, bool)]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).filter(|&i| points[i].2).collect();
    // Sort by cycles ascending, then area ascending, then input index:
    // points with exactly equal objectives tie-break to the earliest
    // index *explicitly* (not by leaning on sort stability), so the
    // frontier is a deterministic function of the point list however it
    // was assembled — a requirement for comparing strategies bit-exactly
    // across thread counts and checkpoint resumes.
    idx.sort_by(|&a, &b| {
        points[a]
            .0
            .total_cmp(&points[b].0)
            .then(points[a].1.total_cmp(&points[b].1))
            .then(a.cmp(&b))
    });
    let mut front = Vec::new();
    let mut best_area = f64::INFINITY;
    for i in idx {
        if points[i].1 < best_area {
            front.push(i);
            best_area = points[i].1;
        }
    }
    front
}

/// Select up to `n` representative points from a frontier, spread evenly
/// (used to pick the "five Pareto points per benchmark" of Table III).
pub fn spread(front: &[usize], n: usize) -> Vec<usize> {
    if front.len() <= n || n == 0 {
        return front.to_vec();
    }
    (0..n)
        .map(|k| front[k * (front.len() - 1) / (n - 1).max(1)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_excludes_dominated_and_invalid() {
        let pts = vec![
            (10.0, 5.0, true), // 0: on front
            (10.0, 6.0, true), // 1: dominated by 0
            (5.0, 10.0, true), // 2: on front (faster)
            (4.0, 1.0, false), // 3: invalid, excluded
            (20.0, 1.0, true), // 4: on front (smallest)
        ];
        let f = pareto_front(&pts);
        assert_eq!(f, vec![2, 0, 4]);
    }

    #[test]
    fn single_point_front() {
        let pts = vec![(1.0, 1.0, true)];
        assert_eq!(pareto_front(&pts), vec![0]);
        assert!(pareto_front(&[]).is_empty());
        assert!(pareto_front(&[(1.0, 1.0, false)]).is_empty());
    }

    #[test]
    fn equal_cycles_takes_smaller_area() {
        let pts = vec![(10.0, 7.0, true), (10.0, 5.0, true)];
        assert_eq!(pareto_front(&pts), vec![1]);
    }

    #[test]
    fn duplicate_objectives_tie_break_to_earliest_index() {
        // Exactly-equal (cycles, area) points: the earliest index wins
        // the frontier slot, deterministically.
        let pts = vec![
            (10.0, 5.0, true), // 0: duplicate of 2 — earliest wins
            (5.0, 9.0, true),  // 1: on front
            (10.0, 5.0, true), // 2: duplicate of 0
            (10.0, 5.0, true), // 3: duplicate of 0
            (20.0, 2.0, true), // 4: on front
        ];
        assert_eq!(pareto_front(&pts), vec![1, 0, 4]);
        // A fully degenerate set keeps exactly one representative.
        let same = vec![(3.0, 3.0, true); 5];
        assert_eq!(pareto_front(&same), vec![0]);
        // Equal cycles with equal area at the front boundary: still one
        // representative, still the earliest.
        let pts = vec![(1.0, 4.0, true), (1.0, 4.0, true), (1.0, 3.0, true)];
        assert_eq!(pareto_front(&pts), vec![2]);
    }

    #[test]
    fn spread_picks_endpoints() {
        let front: Vec<usize> = (0..20).collect();
        let s = spread(&front, 5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], 0);
        assert_eq!(*s.last().unwrap(), 19);
        // Short fronts pass through unchanged.
        assert_eq!(spread(&[3, 4], 5), vec![3, 4]);
    }
}
