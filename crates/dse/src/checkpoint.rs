//! Streaming sweep checkpoints: an interrupted exploration resumes
//! without re-evaluating completed points.
//!
//! The checkpoint is a line-oriented text file. A header pins the sweep
//! configuration (sampling seed, point budget, memory cap, legal-space
//! size and parameter names); one record per completed point follows,
//! appended and flushed as workers finish so a kill at any moment loses
//! at most the points in flight. Floating-point fields are stored as IEEE
//! bit patterns in hex, so a resumed sweep reconstructs *bit-identical*
//! [`DesignPoint`]s and the final result equals an uninterrupted run's.
//!
//! A checkpoint whose header does not match the current sweep (different
//! seed, budget, cap or parameter space) is considered stale and
//! overwritten; a torn trailing record (from a mid-write kill) is
//! ignored. Completed sweeps delete their checkpoint, so only
//! interrupted runs leave one behind.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use dhdl_core::{ParamSpace, ParamValues};
use dhdl_target::AreaReport;

use crate::runner::{DseError, PointOutcome};
use crate::search::{DesignPoint, DseOptions};

const MAGIC: &str = "dhdl-dse-checkpoint v2";

/// One surrogate acquisition round's bookkeeping, recorded in the
/// checkpoint so a resumed run can verify its deterministic replay: the
/// acquisition RNG state at the start of the round and the size of the
/// training set the round's surrogates were fitted on. A mismatch on
/// resume means the replay diverged (different code or data), which is
/// warned about and counted rather than trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SurrogateRound {
    /// Acquisition RNG state (SplitMix64) before the round's batch was
    /// selected.
    pub rng_state: u64,
    /// Number of evaluated training samples the round's surrogates saw.
    pub train_len: usize,
}

/// An open sweep checkpoint: previously completed outcomes plus an
/// append handle for streaming new ones.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    param_names: Vec<String>,
    done: BTreeMap<usize, PointOutcome>,
    rounds: BTreeMap<u64, SurrogateRound>,
    file: Mutex<File>,
}

impl Checkpoint {
    /// Open (resuming) or create (fresh) the checkpoint at `path` for a
    /// sweep over `space` with `opts`. An existing file with a matching
    /// header yields its completed outcomes; a stale or unreadable file
    /// is replaced.
    ///
    /// # Errors
    ///
    /// Returns an error if the file (or its parent directory) cannot be
    /// created or opened.
    pub fn open(
        path: &Path,
        space: &ParamSpace,
        opts: &DseOptions,
        space_size: u128,
    ) -> io::Result<Checkpoint> {
        let param_names: Vec<String> = space.defs().iter().map(|d| d.name.clone()).collect();
        let header = header_lines(opts, space_size, &param_names);
        if let Some((done, rounds)) = try_resume(path, &header, &param_names) {
            let file = OpenOptions::new().append(true).open(path)?;
            return Ok(Checkpoint {
                path: path.to_path_buf(),
                param_names,
                done,
                rounds,
                file: Mutex::new(file),
            });
        }
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // Write the fresh header to a temp file and rename it into
        // place, so a kill during creation can never leave a file that
        // *starts* like a checkpoint but has a torn header — the next
        // open sees either the old file or a complete header.
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(header.join("\n").as_bytes())?;
            file.write_all(b"\n")?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Checkpoint {
            path: path.to_path_buf(),
            param_names,
            done: BTreeMap::new(),
            rounds: BTreeMap::new(),
            file: Mutex::new(file),
        })
    }

    /// Outcomes restored from a previous interrupted run, keyed by
    /// sample index.
    pub fn completed(&self) -> &BTreeMap<usize, PointOutcome> {
        &self.done
    }

    /// Number of restored outcomes.
    pub fn restored(&self) -> usize {
        self.done.len()
    }

    /// The surrogate round record restored for `round`, if any.
    pub(crate) fn surrogate_round(&self, round: u64) -> Option<&SurrogateRound> {
        self.rounds.get(&round)
    }

    /// Append one surrogate round record. Like [`Checkpoint::append`],
    /// failures warn but never interrupt the sweep.
    pub(crate) fn append_surrogate_round(&self, round: u64, rec: &SurrogateRound) {
        let line = format!("S {round} {:016x} {}\n", rec.rng_state, rec.train_len);
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        if let Err(e) = file.write_all(line.as_bytes()) {
            eprintln!(
                "warning: checkpoint append to {} failed: {e}",
                self.path.display()
            );
        }
    }

    /// Append one finished outcome. Failures are reported to stderr but
    /// never interrupt the sweep: a broken checkpoint only costs resume
    /// coverage, not results.
    pub(crate) fn append(&self, index: usize, outcome: &PointOutcome) {
        let Some(line) = record_line(index, outcome, &self.param_names) else {
            return; // Skipped points are re-claimed by the resumed run.
        };
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        if let Err(e) = file.write_all(line.as_bytes()) {
            eprintln!(
                "warning: checkpoint append to {} failed: {e}",
                self.path.display()
            );
        }
    }

    /// Delete the checkpoint file (called after a complete, untruncated
    /// sweep).
    pub fn remove(self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn header_lines(opts: &DseOptions, space_size: u128, param_names: &[String]) -> Vec<String> {
    vec![
        MAGIC.to_string(),
        format!(
            "seed={:x} max_points={} mem_cap_bits={} space_size={}",
            opts.seed, opts.max_points, opts.mem_cap_bits, space_size
        ),
        // The full strategy descriptor, not just its name: a surrogate
        // checkpoint written under different tuning selects different
        // batches, so resuming it would silently change results.
        format!("strategy={}", opts.strategy.descriptor()),
        format!("params={}", param_names.join(" ")),
    ]
}

/// Parse an existing checkpoint, returning its completed outcomes if the
/// header matches the current sweep configuration.
///
/// Every way an existing file can disappoint is handled without a
/// panic and *with a warning*: a missing file is simply fresh (silent),
/// but a stale or corrupt header, an unreadable file, or torn/corrupt
/// records are each reported to stderr and counted on the
/// `checkpoint.stale` / `checkpoint.dropped_records` obs counters, then
/// the sweep proceeds — a bad checkpoint only ever costs resume
/// coverage, never the sweep itself.
type Restored = (BTreeMap<usize, PointOutcome>, BTreeMap<u64, SurrogateRound>);

fn try_resume(path: &Path, header: &[String], param_names: &[String]) -> Option<Restored> {
    let mut text = String::new();
    match File::open(path) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
        Err(e) => {
            eprintln!(
                "warning: checkpoint {} unreadable ({e}); starting a fresh sweep",
                path.display()
            );
            dhdl_obs::counter!("checkpoint.stale").incr();
            return None;
        }
        Ok(mut f) => {
            if let Err(e) = f.read_to_string(&mut text) {
                eprintln!(
                    "warning: checkpoint {} unreadable ({e}); starting a fresh sweep",
                    path.display()
                );
                dhdl_obs::counter!("checkpoint.stale").incr();
                return None;
            }
        }
    }
    let mut lines = text.lines();
    for expected in header {
        if lines.next() != Some(expected.as_str()) {
            eprintln!(
                "warning: checkpoint {} has a stale or corrupt header; starting a fresh sweep",
                path.display()
            );
            dhdl_obs::counter!("checkpoint.stale").incr();
            return None;
        }
    }
    let mut done = BTreeMap::new();
    let mut rounds = BTreeMap::new();
    let mut dropped = 0usize;
    while let Some(line) = lines.next() {
        // A torn trailing record (kill mid-write) parses as None; stop
        // there and let the resumed run redo that point. Anything after
        // the tear is untrustworthy (the format is append-only), so it
        // is dropped too — but loudly, never silently.
        match parse_record(line, param_names) {
            Some(Record::Outcome(idx, outcome)) => {
                done.insert(idx, outcome);
            }
            Some(Record::Round(round, rec)) => {
                rounds.insert(round, rec);
            }
            None => {
                dropped = lines.count() + 1;
                break;
            }
        }
    }
    if dropped > 0 {
        eprintln!(
            "warning: checkpoint {} is torn after {} records; dropping {dropped} trailing line(s) and re-evaluating those points",
            path.display(),
            done.len()
        );
        dhdl_obs::counter!("checkpoint.dropped_records").add(dropped as u64);
    }
    Some((done, rounds))
}

/// Serialize one outcome as a checkpoint record line (with trailing
/// newline). Skipped points produce no record.
fn record_line(index: usize, outcome: &PointOutcome, param_names: &[String]) -> Option<String> {
    let line = match outcome {
        PointOutcome::Evaluated { point, attempts } => {
            let values: Vec<String> = param_names
                .iter()
                .map(|n| {
                    point
                        .params
                        .get(n)
                        .map_or("-".to_string(), |v| v.to_string())
                })
                .collect();
            format!(
                "P {index} {attempts} {} {:016x} {:016x} {:016x} {:016x} {:016x} {}\n",
                u8::from(point.valid),
                point.cycles.to_bits(),
                point.area.alms.to_bits(),
                point.area.regs.to_bits(),
                point.area.dsps.to_bits(),
                point.area.brams.to_bits(),
                values.join(" ")
            )
        }
        PointOutcome::Discarded(DseError::Build(msg)) => {
            format!("D {index} build {}\n", flatten(msg))
        }
        PointOutcome::Discarded(DseError::MemCap { bits, cap_bits }) => {
            format!("D {index} memcap {bits} {cap_bits}\n")
        }
        PointOutcome::Discarded(DseError::Panic { attempts, message }) => {
            format!("D {index} panic {attempts} {}\n", flatten(message))
        }
        PointOutcome::Discarded(DseError::NonFinite { attempts }) => {
            format!("D {index} nonfinite {attempts}\n")
        }
        PointOutcome::Skipped => return None,
    };
    Some(line)
}

/// A parsed checkpoint record: a point outcome (`P`/`D` lines) or a
/// surrogate round (`S` lines).
#[derive(Debug, PartialEq)]
enum Record {
    Outcome(usize, PointOutcome),
    Round(u64, SurrogateRound),
}

/// Parse one record line; `None` on any malformation.
fn parse_record(line: &str, param_names: &[String]) -> Option<Record> {
    let mut fields = line.split(' ');
    let tag = fields.next()?;
    if tag == "S" {
        let round: u64 = fields.next()?.parse().ok()?;
        let rng_state = u64::from_str_radix(fields.next()?, 16).ok()?;
        let train_len: usize = fields.next()?.parse().ok()?;
        if fields.next().is_some() {
            return None;
        }
        return Some(Record::Round(
            round,
            SurrogateRound {
                rng_state,
                train_len,
            },
        ));
    }
    let index: usize = fields.next()?.parse().ok()?;
    match tag {
        "P" => {
            let attempts: u32 = fields.next()?.parse().ok()?;
            let valid = match fields.next()? {
                "0" => false,
                "1" => true,
                _ => return None,
            };
            let mut bits = || -> Option<f64> {
                Some(f64::from_bits(
                    u64::from_str_radix(fields.next()?, 16).ok()?,
                ))
            };
            let cycles = bits()?;
            let area = AreaReport {
                alms: bits()?,
                regs: bits()?,
                dsps: bits()?,
                brams: bits()?,
            };
            let mut params = ParamValues::new();
            for name in param_names {
                let raw = fields.next()?;
                if raw != "-" {
                    params.set(name, raw.parse().ok()?);
                }
            }
            if fields.next().is_some() {
                return None;
            }
            Some(Record::Outcome(
                index,
                PointOutcome::Evaluated {
                    point: DesignPoint {
                        params,
                        cycles,
                        area,
                        valid,
                    },
                    attempts,
                },
            ))
        }
        "D" => {
            let kind = fields.next()?;
            let rest = |fields: std::str::Split<'_, char>| -> String {
                fields.collect::<Vec<_>>().join(" ")
            };
            let error = match kind {
                "build" => DseError::Build(rest(fields)),
                "memcap" => DseError::MemCap {
                    bits: fields.next()?.parse().ok()?,
                    cap_bits: fields.next()?.parse().ok()?,
                },
                "panic" => {
                    let attempts: u32 = fields.next()?.parse().ok()?;
                    DseError::Panic {
                        attempts,
                        message: rest(fields),
                    }
                }
                "nonfinite" => DseError::NonFinite {
                    attempts: fields.next()?.parse().ok()?,
                },
                _ => return None,
            };
            Some(Record::Outcome(index, PointOutcome::Discarded(error)))
        }
        _ => None,
    }
}

/// Newlines would tear the line-oriented format; spaces are fine because
/// messages are always the trailing field.
fn flatten(msg: &str) -> String {
    msg.replace(['\n', '\r'], " ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["par".to_string(), "tile".to_string()]
    }

    fn sample_point() -> PointOutcome {
        PointOutcome::Evaluated {
            point: DesignPoint {
                params: ParamValues::new().with("par", 4).with("tile", 64),
                cycles: 123456.75,
                area: AreaReport {
                    alms: 1.5,
                    regs: 2.25,
                    dsps: 0.0,
                    brams: 7.125,
                },
                valid: true,
            },
            attempts: 2,
        }
    }

    #[test]
    fn records_roundtrip_bit_exactly() {
        let outcomes = [
            sample_point(),
            PointOutcome::Discarded(DseError::Build("missing parameter `p`".into())),
            PointOutcome::Discarded(DseError::MemCap {
                bits: 9000,
                cap_bits: 8192,
            }),
            PointOutcome::Discarded(DseError::Panic {
                attempts: 3,
                message: "index out of\nbounds".into(),
            }),
            PointOutcome::Discarded(DseError::NonFinite { attempts: 3 }),
        ];
        for (i, outcome) in outcomes.iter().enumerate() {
            let line = record_line(i, outcome, &names()).unwrap();
            let Some(Record::Outcome(idx, parsed)) = parse_record(line.trim_end(), &names()) else {
                panic!("record did not parse as an outcome: {line}");
            };
            assert_eq!(idx, i);
            match (&parsed, outcome) {
                // Newlines are flattened; everything else is exact.
                (
                    PointOutcome::Discarded(DseError::Panic { message, .. }),
                    PointOutcome::Discarded(DseError::Panic { .. }),
                ) => assert_eq!(message, "index out of bounds"),
                _ => assert_eq!(&parsed, outcome),
            }
        }
    }

    #[test]
    fn skipped_points_have_no_record() {
        assert!(record_line(0, &PointOutcome::Skipped, &names()).is_none());
    }

    #[test]
    fn torn_and_malformed_records_are_rejected() {
        let good = record_line(3, &sample_point(), &names()).unwrap();
        let torn = &good[..good.len() / 2];
        assert!(parse_record(torn.trim_end(), &names()).is_none());
        assert!(parse_record("X 1 nonsense", &names()).is_none());
        assert!(parse_record("", &names()).is_none());
        assert!(parse_record("S 1 zz 4", &names()).is_none());
        assert!(parse_record("S 1 00000000000000aa 4 extra", &names()).is_none());
    }

    #[test]
    fn surrogate_round_records_roundtrip() {
        let rec = SurrogateRound {
            rng_state: 0xDEAD_BEEF_0123_4567,
            train_len: 48,
        };
        let line = format!("S 7 {:016x} {}", rec.rng_state, rec.train_len);
        assert_eq!(parse_record(&line, &names()), Some(Record::Round(7, rec)));
    }

    #[test]
    fn torn_and_corrupt_files_fall_back_without_panicking() {
        let dir = std::env::temp_dir().join(format!("dhdl-ckpt-torn-{}", std::process::id()));
        let path = dir.join("torn.ckpt");
        let mut space = ParamSpace::new();
        space.tile("tile", 64, 4, 64);
        space.par("par", 8, 8);
        let opts = DseOptions {
            max_points: 10,
            ..DseOptions::default()
        };
        // Two good records, then a mid-write kill leaves a torn third.
        let ckpt = Checkpoint::open(&path, &space, &opts, 99).unwrap();
        ckpt.append(0, &sample_point());
        ckpt.append(1, &sample_point());
        drop(ckpt);
        let good = record_line(2, &sample_point(), &names()).unwrap();
        let mut raw = std::fs::read_to_string(&path).unwrap();
        raw.push_str(&good[..good.len() / 2]);
        std::fs::write(&path, &raw).unwrap();
        let resumed = Checkpoint::open(&path, &space, &opts, 99).unwrap();
        assert_eq!(resumed.restored(), 2, "torn record dropped, rest kept");
        drop(resumed);
        // Outright garbage (binary noise) → fresh sweep, no panic.
        std::fs::write(&path, [0u8, 159, 146, 150, b'\n', 0xFF]).unwrap();
        let fresh = Checkpoint::open(&path, &space, &opts, 99).unwrap();
        assert_eq!(fresh.restored(), 0);
        drop(fresh);
        // A truncated header (kill during creation before the rename
        // discipline existed) → fresh sweep.
        std::fs::write(&path, MAGIC.as_bytes()).unwrap();
        let fresh = Checkpoint::open(&path, &space, &opts, 99).unwrap();
        assert_eq!(fresh.restored(), 0);
        fresh.remove();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn surrogate_rounds_survive_resume_and_pin_the_strategy() {
        use crate::search::{SearchStrategy, SurrogateConfig};
        let dir = std::env::temp_dir().join(format!("dhdl-ckpt-sur-{}", std::process::id()));
        let path = dir.join("sur.ckpt");
        let mut space = ParamSpace::new();
        space.tile("tile", 64, 4, 64);
        space.par("par", 8, 8);
        let opts = DseOptions {
            max_points: 10,
            strategy: SearchStrategy::Surrogate(SurrogateConfig::default()),
            ..DseOptions::default()
        };
        let rec = SurrogateRound {
            rng_state: 0xABCD,
            train_len: 3,
        };
        let ckpt = Checkpoint::open(&path, &space, &opts, 99).unwrap();
        ckpt.append(0, &sample_point());
        ckpt.append_surrogate_round(0, &rec);
        drop(ckpt);
        let resumed = Checkpoint::open(&path, &space, &opts, 99).unwrap();
        assert_eq!(resumed.restored(), 1);
        assert_eq!(resumed.surrogate_round(0), Some(&rec));
        assert_eq!(resumed.surrogate_round(1), None);
        drop(resumed);
        // A checkpoint written under one strategy must not resume under
        // another: the point indices mean different things.
        let random = DseOptions {
            strategy: SearchStrategy::Random,
            ..opts.clone()
        };
        let fresh = Checkpoint::open(&path, &space, &random, 99).unwrap();
        assert_eq!(fresh.restored(), 0);
        // And different surrogate tuning is stale too.
        let retuned = DseOptions {
            strategy: SearchStrategy::Surrogate(SurrogateConfig {
                batch: 99,
                ..SurrogateConfig::default()
            }),
            ..opts
        };
        drop(fresh);
        let fresh = Checkpoint::open(&path, &space, &retuned, 99).unwrap();
        assert_eq!(fresh.restored(), 0);
        fresh.remove();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_header_is_not_resumed() {
        let dir = std::env::temp_dir().join(format!("dhdl-ckpt-test-{}", std::process::id()));
        let path = dir.join("stale.ckpt");
        let mut space = ParamSpace::new();
        space.tile("tile", 64, 4, 64);
        space.par("par", 8, 8);
        let opts = DseOptions {
            max_points: 10,
            ..DseOptions::default()
        };
        let ckpt = Checkpoint::open(&path, &space, &opts, 99).unwrap();
        ckpt.append(0, &sample_point());
        drop(ckpt);
        // Same config resumes; different seed does not.
        let resumed = Checkpoint::open(&path, &space, &opts, 99).unwrap();
        assert_eq!(resumed.restored(), 1);
        drop(resumed);
        let other = DseOptions {
            seed: opts.seed + 1,
            ..opts
        };
        let fresh = Checkpoint::open(&path, &space, &other, 99).unwrap();
        assert_eq!(fresh.restored(), 0);
        fresh.remove();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
