//! The design space walker: evaluate sampled legal points with the fast
//! estimators and extract the Pareto-optimal surface (§IV-C, Figure 5).

use dhdl_core::{Design, ParamSpace, ParamValues};
use dhdl_estimate::Estimator;
use dhdl_target::AreaReport;

use crate::pareto::pareto_front;
use crate::space::LegalSpace;

/// Options controlling a design-space exploration run.
#[derive(Debug, Clone, PartialEq)]
pub struct DseOptions {
    /// Maximum number of legal points to evaluate (the paper samples up to
    /// 75 000).
    pub max_points: usize,
    /// RNG seed for sampling.
    pub seed: u64,
    /// Maximum size of any single on-chip memory in bits ("the total size
    /// of each local memory is limited to a fixed maximum value").
    pub mem_cap_bits: u64,
}

impl Default for DseOptions {
    fn default() -> Self {
        DseOptions {
            max_points: 75_000,
            seed: 0xD5E,
            mem_cap_bits: 8 * 1024 * 1024, // 8 Mbit per logical buffer
        }
    }
}

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The parameter assignment.
    pub params: ParamValues,
    /// Estimated execution cycles.
    pub cycles: f64,
    /// Estimated area.
    pub area: AreaReport,
    /// Whether the design fits on the target device.
    pub valid: bool,
}

/// The outcome of a design-space exploration.
#[derive(Debug, Clone)]
pub struct DseResult {
    /// Evaluated points (legal points only; designs violating the memory
    /// cap or failing to build are discarded before estimation).
    pub points: Vec<DesignPoint>,
    /// Indices into `points` of the Pareto frontier (cycles vs. ALMs).
    pub pareto: Vec<usize>,
    /// Total size of the legal space before sampling.
    pub space_size: u128,
    /// Number of sampled points discarded before estimation.
    pub discarded: usize,
}

impl DseResult {
    /// The fastest valid design point, if any.
    pub fn best(&self) -> Option<&DesignPoint> {
        self.pareto.first().map(|&i| &self.points[i])
    }

    /// Pareto points, fastest first.
    pub fn pareto_points(&self) -> impl Iterator<Item = &DesignPoint> {
        self.pareto.iter().map(|&i| &self.points[i])
    }
}

/// Explore a benchmark's design space.
///
/// `build` instantiates the benchmark metaprogram for a parameter
/// assignment; points whose designs fail to build or exceed the local
/// memory cap are discarded immediately (§IV-C), and points whose
/// estimated area exceeds the device are kept but flagged invalid (the
/// gray points of Figure 5).
pub fn explore<F>(
    build: F,
    space: &ParamSpace,
    estimator: &Estimator,
    opts: &DseOptions,
) -> DseResult
where
    F: Fn(&ParamValues) -> dhdl_core::Result<Design>,
{
    let legal = LegalSpace::new(space);
    let samples = legal.sample(opts.max_points, opts.seed);
    let target = &estimator.platform().fpga;
    let mut points = Vec::with_capacity(samples.len());
    let mut discarded = 0usize;
    for params in samples {
        let Ok(design) = build(&params) else {
            discarded += 1;
            continue;
        };
        if exceeds_mem_cap(&design, opts.mem_cap_bits) {
            discarded += 1;
            continue;
        }
        let est = estimator.estimate(&design);
        let valid = est.area.fits(target);
        points.push(DesignPoint {
            params,
            cycles: est.cycles,
            area: est.area,
            valid,
        });
    }
    let tuples: Vec<(f64, f64, bool)> = points
        .iter()
        .map(|p| (p.cycles, p.area.alms, p.valid))
        .collect();
    let pareto = pareto_front(&tuples);
    DseResult {
        points,
        pareto,
        space_size: legal.size(),
        discarded,
    }
}

/// Refine a DSE result with local search: for every Pareto point, evaluate
/// all single-parameter neighbors (adjacent legal values), keep anything
/// new, and repeat for `rounds` rounds or until no Pareto improvement —
/// the "walk the space of designs" step layered on random sampling.
pub fn refine<F>(
    build: F,
    space: &ParamSpace,
    estimator: &Estimator,
    opts: &DseOptions,
    result: &DseResult,
    rounds: usize,
) -> DseResult
where
    F: Fn(&ParamValues) -> dhdl_core::Result<Design>,
{
    let target = &estimator.platform().fpga;
    let mut points = result.points.clone();
    let mut seen: std::collections::BTreeSet<String> =
        points.iter().map(|p| p.params.to_string()).collect();
    let mut pareto = result.pareto.clone();
    let mut discarded = result.discarded;
    for _ in 0..rounds {
        let frontier: Vec<ParamValues> = pareto.iter().map(|&i| points[i].params.clone()).collect();
        let mut any_new = false;
        for params in frontier {
            for def in space.defs() {
                let legal = def.kind.legal_values();
                let Some(cur) = params.get(&def.name) else {
                    continue;
                };
                let Some(pos) = legal.iter().position(|&v| v == cur) else {
                    continue;
                };
                for neighbor in [pos.checked_sub(1), pos.checked_add(1)] {
                    let Some(np) = neighbor.and_then(|i| legal.get(i)) else {
                        continue;
                    };
                    let mut candidate = params.clone();
                    candidate.set(&def.name, *np);
                    if !seen.insert(candidate.to_string()) {
                        continue;
                    }
                    let Ok(design) = build(&candidate) else {
                        discarded += 1;
                        continue;
                    };
                    if exceeds_mem_cap(&design, opts.mem_cap_bits) {
                        discarded += 1;
                        continue;
                    }
                    let est = estimator.estimate(&design);
                    points.push(DesignPoint {
                        params: candidate,
                        cycles: est.cycles,
                        area: est.area,
                        valid: est.area.fits(target),
                    });
                    any_new = true;
                }
            }
        }
        let tuples: Vec<(f64, f64, bool)> = points
            .iter()
            .map(|p| (p.cycles, p.area.alms, p.valid))
            .collect();
        let new_pareto = pareto_front(&tuples);
        let improved = new_pareto != pareto;
        pareto = new_pareto;
        if !any_new || !improved {
            break;
        }
    }
    DseResult {
        points,
        pareto,
        space_size: result.space_size,
        discarded,
    }
}

fn exceeds_mem_cap(design: &Design, cap_bits: u64) -> bool {
    design.iter().any(|(_, n)| match &n.kind {
        dhdl_core::NodeKind::Bram(b) => b.elements() * u64::from(n.ty.bits()) > cap_bits,
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::{by, DType, DesignBuilder, ReduceOp};
    use dhdl_target::Platform;

    fn build_dot(p: &ParamValues) -> dhdl_core::Result<Design> {
        let n = 4096u64;
        let tile = p.dim("tile")?;
        let par = p.par("par")?;
        let toggle = p.toggle("mp")?;
        let mut b = DesignBuilder::new("dot");
        let x = b.off_chip("x", DType::F32, &[n]);
        let y = b.off_chip("y", DType::F32, &[n]);
        b.sequential(|b| {
            let acc = b.reg("acc", DType::F32, 0.0);
            b.outer(toggle, &[by(n, tile)], 1, |b, iters| {
                let i = iters[0];
                let xt = b.bram("xT", DType::F32, &[tile]);
                let yt = b.bram("yT", DType::F32, &[tile]);
                b.parallel(|b| {
                    b.tile_load(x, xt, &[i], &[tile], par);
                    b.tile_load(y, yt, &[i], &[tile], par);
                });
                b.pipe_reduce(&[by(tile, 1)], par, acc, ReduceOp::Add, |b, it| {
                    let a = b.load(xt, &[it[0]]);
                    let c = b.load(yt, &[it[0]]);
                    b.mul(a, c)
                });
            });
        });
        b.finish()
    }

    fn space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.tile("tile", 4096, 16, 1024);
        s.par("par", 16, 16);
        s.toggle("mp");
        s
    }

    fn estimator() -> Estimator {
        Estimator::calibrate_with(&Platform::maia(), 30, 11).0
    }

    #[test]
    fn exploration_finds_pareto_points() {
        let est = estimator();
        let opts = DseOptions {
            max_points: 60,
            ..DseOptions::default()
        };
        let r = explore(build_dot, &space(), &est, &opts);
        assert!(!r.points.is_empty());
        assert!(!r.pareto.is_empty());
        let best = r.best().unwrap();
        assert!(best.valid);
        // Pareto points are sorted fastest-first and areas decrease.
        let pp: Vec<_> = r.pareto_points().collect();
        for w in pp.windows(2) {
            assert!(w[0].cycles <= w[1].cycles);
            assert!(w[0].area.alms >= w[1].area.alms);
        }
    }

    #[test]
    fn mem_cap_discards_points() {
        let est = estimator();
        let opts = DseOptions {
            max_points: 500,
            mem_cap_bits: 16 * 32, // absurdly small: only tile<=16 passes
            ..DseOptions::default()
        };
        let r = explore(build_dot, &space(), &est, &opts);
        assert!(r.discarded > 0);
        for p in &r.points {
            assert!(p.params.dim("tile").unwrap() <= 16);
        }
    }

    #[test]
    fn refinement_never_worsens_the_front() {
        let est = estimator();
        let opts = DseOptions {
            max_points: 30,
            ..DseOptions::default()
        };
        let base = explore(build_dot, &space(), &est, &opts);
        let refined = refine(build_dot, &space(), &est, &opts, &base, 3);
        assert!(refined.points.len() >= base.points.len());
        let best_before = base.best().unwrap().cycles;
        let best_after = refined.best().unwrap().cycles;
        assert!(best_after <= best_before, "{best_after} vs {best_before}");
        // No duplicates introduced.
        let mut names: Vec<String> = refined
            .points
            .iter()
            .map(|p| p.params.to_string())
            .collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn space_size_reported() {
        let est = estimator();
        let opts = DseOptions {
            max_points: 10,
            ..DseOptions::default()
        };
        let r = explore(build_dot, &space(), &est, &opts);
        assert_eq!(r.space_size, LegalSpace::new(&space()).size());
        assert!(r.points.len() <= 10);
    }
}
