//! The design space walker: evaluate sampled legal points with the fast
//! estimators and extract the Pareto-optimal surface (§IV-C, Figure 5).
//!
//! Since the resilient-runner rework, `explore` and `refine` fan their
//! point evaluations out over [`crate::runner`]: panics are isolated per
//! point, transient failures are retried, every loss is accounted in
//! [`OutcomeCounts`], a deadline truncates gracefully, and checkpoints
//! make interrupted sweeps resumable.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use dhdl_core::{Design, ParamSpace, ParamValues};
use dhdl_target::AreaReport;

use crate::checkpoint::Checkpoint;
use crate::pareto::pareto_front;
use crate::runner::{self, CostModel, DseError, OutcomeCounts, PointOutcome, SweepStats};
use crate::space::LegalSpace;

/// How [`explore`] walks the legal space.
///
/// Both strategies spend the same budget ([`DseOptions::max_points`])
/// and share the resilient runner, checkpointing and estimate-cache
/// machinery; they differ only in *which* points get evaluated.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SearchStrategy {
    /// The paper's uniform random sweep (§IV-C): sample `max_points`
    /// legal points and evaluate them all. The default, bit-identical to
    /// the historical `explore` behavior.
    #[default]
    Random,
    /// Active learning: seed with a small random batch, train a
    /// `dhdl-mlp` surrogate on evaluated points, and spend the rest of
    /// the budget on the candidates with the highest predicted
    /// Pareto-hypervolume improvement. See [`SurrogateConfig`] and the
    /// DESIGN.md "Surrogate-guided search" section.
    Surrogate(SurrogateConfig),
}

impl SearchStrategy {
    /// Parse a strategy name as accepted by the `DHDL_DSE_STRATEGY`
    /// knob: `random` or `surrogate` (default tuning).
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "random" => Ok(SearchStrategy::Random),
            "surrogate" => Ok(SearchStrategy::Surrogate(SurrogateConfig::default())),
            other => Err(format!(
                "unknown DSE strategy `{other}` (expected `random` or `surrogate`)"
            )),
        }
    }

    /// Read the strategy from the `DHDL_DSE_STRATEGY` environment
    /// variable; an unset variable means [`SearchStrategy::Random`] and
    /// an unparseable value warns to stderr and falls back to random, so
    /// a typo can never silently change *and* crash a sweep.
    pub fn from_env() -> Self {
        match std::env::var("DHDL_DSE_STRATEGY") {
            Ok(v) => SearchStrategy::parse(&v).unwrap_or_else(|e| {
                eprintln!("warning: DHDL_DSE_STRATEGY ignored: {e}");
                SearchStrategy::Random
            }),
            Err(_) => SearchStrategy::Random,
        }
    }

    /// Short human/machine-readable name (`random` / `surrogate`).
    pub fn name(&self) -> &'static str {
        match self {
            SearchStrategy::Random => "random",
            SearchStrategy::Surrogate(_) => "surrogate",
        }
    }

    /// Full descriptor pinned into checkpoint headers: any tuning change
    /// alters the descriptor, so a checkpoint written under one strategy
    /// configuration is stale under another instead of silently resumed.
    pub(crate) fn descriptor(&self) -> String {
        match self {
            SearchStrategy::Random => "random".to_string(),
            SearchStrategy::Surrogate(c) => format!(
                "surrogate init={} batch={} pool_factor={} explore={:016x} hidden={} epochs={}",
                c.init,
                c.batch,
                c.pool_factor,
                c.explore.to_bits(),
                c.hidden,
                c.epochs
            ),
        }
    }
}

/// Tuning for [`SearchStrategy::Surrogate`]. The defaults hold the
/// dsebench acceptance bar (≥90% of the random front's hypervolume at
/// 10% of its budget on the fig5 benchmarks); see EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateConfig {
    /// Size of the initial uniform-random seed batch the first
    /// surrogates are trained on.
    pub init: usize,
    /// Points acquired (dispatched to the runner) per round after the
    /// seed batch.
    pub batch: usize,
    /// Candidate-pool size as a multiple of the budget: the surrogate
    /// scores `max_points × pool_factor` uniformly sampled legal points
    /// and only ever evaluates points from that pool. With the default
    /// factor of 10, a surrogate run at 10% of a random sweep's budget
    /// scores exactly the pool that sweep would have evaluated.
    pub pool_factor: usize,
    /// Fraction of each acquisition batch drawn uniformly at random from
    /// the unevaluated pool instead of by predicted improvement —
    /// ε-greedy exploration so a mistrained surrogate cannot starve
    /// whole regions of the space.
    pub explore: f64,
    /// Hidden-layer width of the surrogate networks (the paper's area
    /// networks use six hidden nodes, §IV-B2).
    pub hidden: usize,
    /// RPROP epochs per (re)training round.
    pub epochs: usize,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig {
            init: 32,
            batch: 16,
            pool_factor: 10,
            explore: 0.25,
            hidden: 6,
            epochs: 250,
        }
    }
}

/// Options controlling a design-space exploration run.
#[derive(Debug, Clone, PartialEq)]
pub struct DseOptions {
    /// Maximum number of legal points to evaluate (the paper samples up to
    /// 75 000).
    pub max_points: usize,
    /// RNG seed for sampling.
    pub seed: u64,
    /// Maximum size of any single on-chip memory in bits ("the total size
    /// of each local memory is limited to a fixed maximum value").
    pub mem_cap_bits: u64,
    /// Worker threads for the parallel sweep (`0` = all available cores).
    /// Results are identical for every thread count.
    pub threads: usize,
    /// Extra evaluation attempts after a panic or non-finite estimate
    /// before the point is recorded as failed.
    pub retries: u32,
    /// Wall-clock budget for the sweep. When it expires, the sweep stops
    /// claiming points and returns a partial result flagged
    /// [`DseResult::truncated`]; unevaluated points stay out of the
    /// checkpoint so a resumed run picks them up.
    pub deadline: Option<Duration>,
    /// Checkpoint file for crash/interrupt resume. Completed points
    /// stream to this file as they finish; a sweep finding a matching
    /// checkpoint resumes instead of re-evaluating, and a complete
    /// (untruncated) sweep deletes it.
    pub checkpoint: Option<PathBuf>,
    /// Salt for the parameter-keyed fast path of the estimate cache
    /// (see [`crate::params_key`]). It must identify the
    /// metaprogram and dataset whose `build` maps parameter assignments
    /// to designs: benchmarks sharing one cache with identical salts
    /// would alias assignments like `{par=4, tile=64}` onto each other.
    /// `None` (the default) disables the fast path; the structural-hash
    /// cache still applies when the cost model carries one.
    pub cache_salt: Option<u64>,
    /// Which points the sweep spends its budget on; see
    /// [`SearchStrategy`].
    pub strategy: SearchStrategy,
}

impl Default for DseOptions {
    fn default() -> Self {
        DseOptions {
            max_points: 75_000,
            seed: 0xD5E,
            mem_cap_bits: 8 * 1024 * 1024, // 8 Mbit per logical buffer
            threads: 0,
            retries: 2,
            deadline: None,
            checkpoint: None,
            cache_salt: None,
            strategy: SearchStrategy::Random,
        }
    }
}

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The parameter assignment.
    pub params: ParamValues,
    /// Estimated execution cycles.
    pub cycles: f64,
    /// Estimated area.
    pub area: AreaReport,
    /// Whether the design fits on the target device.
    pub valid: bool,
}

/// The outcome of a design-space exploration.
#[derive(Debug, Clone)]
pub struct DseResult {
    /// Evaluated points (legal points only; designs violating the memory
    /// cap or failing to build are discarded before estimation).
    pub points: Vec<DesignPoint>,
    /// Indices into `points` of the Pareto frontier (cycles vs. ALMs).
    pub pareto: Vec<usize>,
    /// Total size of the legal space before sampling.
    pub space_size: u128,
    /// Number of sampled points discarded before estimation (the sum of
    /// the per-category [`DseResult::counts`]).
    pub discarded: usize,
    /// Per-category outcome accounting: build failures, memory-cap
    /// violations, evaluation failures, retry recoveries and
    /// deadline-skipped points.
    pub counts: OutcomeCounts,
    /// Sample indices that were discarded, with the structured reason —
    /// nothing is lost silently.
    pub errors: Vec<(usize, DseError)>,
    /// `true` when the deadline expired before every sampled point was
    /// evaluated; the result is valid but partial, and re-running with
    /// the same checkpoint resumes where it stopped.
    pub truncated: bool,
    /// Sweep performance accounting: wall-clock time, throughput and
    /// estimate-cache hit/miss counters. Not part of equality — two
    /// sweeps producing identical points compare equal however fast
    /// they ran and wherever their estimates came from.
    pub stats: SweepStats,
}

/// Equality over everything *except* [`DseResult::stats`]: tests assert
/// bit-identical results across thread counts and cache states, and
/// timing/hit-rate accounting legitimately differs between such runs.
impl PartialEq for DseResult {
    fn eq(&self, other: &Self) -> bool {
        self.points == other.points
            && self.pareto == other.pareto
            && self.space_size == other.space_size
            && self.discarded == other.discarded
            && self.counts == other.counts
            && self.errors == other.errors
            && self.truncated == other.truncated
    }
}

impl DseResult {
    /// The fastest *valid* design point, if any — selected by scanning
    /// all valid points (minimum cycles, ties broken by smaller area),
    /// not by trusting any particular frontier ordering.
    pub fn best(&self) -> Option<&DesignPoint> {
        self.points.iter().filter(|p| p.valid).min_by(|a, b| {
            a.cycles
                .total_cmp(&b.cycles)
                .then(a.area.alms.total_cmp(&b.area.alms))
        })
    }

    /// Pareto points, fastest first.
    pub fn pareto_points(&self) -> impl Iterator<Item = &DesignPoint> {
        self.pareto.iter().map(|&i| &self.points[i])
    }

    /// Assemble a result from per-sample outcomes in sample order.
    fn from_outcomes(
        outcomes: Vec<PointOutcome>,
        space_size: u128,
        truncated: bool,
        stats: SweepStats,
    ) -> Self {
        let counts = OutcomeCounts::tally(&outcomes);
        let mut points = Vec::with_capacity(counts.evaluated);
        let mut errors = Vec::new();
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                PointOutcome::Evaluated { point, .. } => points.push(point),
                PointOutcome::Discarded(err) => errors.push((i, err)),
                PointOutcome::Skipped => {}
            }
        }
        let pareto = pareto_front(&point_tuples(&points));
        DseResult {
            points,
            pareto,
            space_size,
            discarded: counts.discarded(),
            counts,
            errors,
            truncated,
            stats,
        }
    }
}

pub(crate) fn point_tuples(points: &[DesignPoint]) -> Vec<(f64, f64, bool)> {
    points
        .iter()
        .map(|p| (p.cycles, p.area.alms, p.valid))
        .collect()
}

/// Explore a benchmark's design space.
///
/// `build` instantiates the benchmark metaprogram for a parameter
/// assignment; points whose designs fail to build or exceed the local
/// memory cap are discarded immediately (§IV-C), and points whose
/// estimated area exceeds the device are kept but flagged invalid (the
/// gray points of Figure 5). Evaluation runs on a work-stealing thread
/// pool with per-point panic isolation; see [`DseOptions`] for the
/// thread, retry, deadline and checkpoint knobs. Results are
/// deterministic in `opts.seed` for every thread count.
///
/// The budget is spent per [`DseOptions::strategy`]: the default
/// [`SearchStrategy::Random`] evaluates a uniform sample of
/// `max_points` legal points, while [`SearchStrategy::Surrogate`]
/// routes the same budget through the active-learning loop in the
/// `surrogate` module. Both are deterministic per seed and resumable
/// through the same checkpoint machinery.
pub fn explore<F, E>(build: F, space: &ParamSpace, estimator: &E, opts: &DseOptions) -> DseResult
where
    F: Fn(&ParamValues) -> dhdl_core::Result<Design> + Sync,
    E: CostModel + ?Sized,
{
    match &opts.strategy {
        SearchStrategy::Random => explore_random(build, space, estimator, opts),
        SearchStrategy::Surrogate(cfg) => {
            crate::surrogate::explore_surrogate(&build, space, estimator, opts, cfg)
        }
    }
}

/// The uniform random sweep (the historical `explore` body, unchanged).
fn explore_random<F, E>(build: F, space: &ParamSpace, estimator: &E, opts: &DseOptions) -> DseResult
where
    F: Fn(&ParamValues) -> dhdl_core::Result<Design> + Sync,
    E: CostModel + ?Sized,
{
    let legal = LegalSpace::new(space);
    let samples = legal.sample(opts.max_points, opts.seed);
    let deadline = opts.deadline.map(|d| Instant::now() + d);
    // A checkpoint that cannot be opened costs resumability, never the
    // sweep itself.
    let checkpoint = opts.checkpoint.as_ref().and_then(|path| {
        match Checkpoint::open(path, space, opts, legal.size()) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("warning: checkpoint {} unavailable: {e}", path.display());
                None
            }
        }
    });
    let (outcomes, stats) = runner::evaluate_points(
        &build,
        estimator,
        &samples,
        opts,
        deadline,
        checkpoint.as_ref(),
    );
    let truncated = outcomes.iter().any(|o| matches!(o, PointOutcome::Skipped));
    if !truncated {
        if let Some(ckpt) = checkpoint {
            ckpt.remove();
        }
    }
    DseResult::from_outcomes(outcomes, legal.size(), truncated, stats)
}

/// Refine a DSE result with local search: for every Pareto point, evaluate
/// all single-parameter neighbors (adjacent legal values), keep anything
/// new, and repeat for `rounds` rounds or until no Pareto improvement —
/// the "walk the space of designs" step layered on random sampling. Each
/// round's candidate batch is evaluated on the same resilient parallel
/// runner as [`explore`].
pub fn refine<F, E>(
    build: F,
    space: &ParamSpace,
    estimator: &E,
    opts: &DseOptions,
    result: &DseResult,
    rounds: usize,
) -> DseResult
where
    F: Fn(&ParamValues) -> dhdl_core::Result<Design> + Sync,
    E: CostModel + ?Sized,
{
    let mut points = result.points.clone();
    let mut seen: std::collections::BTreeSet<String> =
        points.iter().map(|p| p.params.to_string()).collect();
    let mut pareto = result.pareto.clone();
    let mut counts = result.counts;
    let mut errors = result.errors.clone();
    let mut stats = result.stats;
    for _ in 0..rounds {
        let frontier: Vec<ParamValues> = pareto.iter().map(|&i| points[i].params.clone()).collect();
        let mut candidates = Vec::new();
        for params in frontier {
            for def in space.defs() {
                let legal = def.kind.legal_values();
                let Some(cur) = params.get(&def.name) else {
                    continue;
                };
                let Some(pos) = legal.iter().position(|&v| v == cur) else {
                    continue;
                };
                for neighbor in [pos.checked_sub(1), pos.checked_add(1)] {
                    let Some(np) = neighbor.and_then(|i| legal.get(i)) else {
                        continue;
                    };
                    let mut candidate = params.clone();
                    candidate.set(&def.name, *np);
                    if seen.insert(candidate.to_string()) {
                        candidates.push(candidate);
                    }
                }
            }
        }
        let any_new = !candidates.is_empty();
        let (outcomes, round_stats) =
            runner::evaluate_points(&build, estimator, &candidates, opts, None, None);
        stats.absorb(round_stats);
        let round_counts = OutcomeCounts::tally(&outcomes);
        counts = merge_counts(counts, round_counts);
        for outcome in outcomes {
            match outcome {
                PointOutcome::Evaluated { point, .. } => points.push(point),
                // Refinement candidates have no stable sample index;
                // record them past the end of the sampled range.
                PointOutcome::Discarded(err) => errors.push((usize::MAX, err)),
                PointOutcome::Skipped => {}
            }
        }
        let new_pareto = pareto_front(&point_tuples(&points));
        let improved = new_pareto != pareto;
        pareto = new_pareto;
        if !any_new || !improved {
            break;
        }
    }
    DseResult {
        points,
        pareto,
        space_size: result.space_size,
        discarded: counts.discarded(),
        counts,
        errors,
        truncated: result.truncated,
        stats,
    }
}

fn merge_counts(a: OutcomeCounts, b: OutcomeCounts) -> OutcomeCounts {
    OutcomeCounts {
        evaluated: a.evaluated + b.evaluated,
        build_failed: a.build_failed + b.build_failed,
        mem_cap: a.mem_cap + b.mem_cap,
        eval_failed: a.eval_failed + b.eval_failed,
        recovered: a.recovered + b.recovered,
        skipped: a.skipped + b.skipped,
    }
}

/// Evaluate an explicit list of parameter assignments on the resilient
/// runner (no sampling), returning outcomes in input order. This is the
/// building block `explore`/`refine` share, exposed for harnesses that
/// walk hand-picked point lists.
pub fn evaluate_all<F, E>(
    build: F,
    candidates: &[ParamValues],
    estimator: &E,
    opts: &DseOptions,
) -> Vec<PointOutcome>
where
    F: Fn(&ParamValues) -> dhdl_core::Result<Design> + Sync,
    E: CostModel + ?Sized,
{
    let deadline = opts.deadline.map(|d| Instant::now() + d);
    runner::evaluate_points(&build, estimator, candidates, opts, deadline, None).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::{by, DType, DesignBuilder, ReduceOp};
    use dhdl_estimate::Estimator;
    use dhdl_target::Platform;

    fn build_dot(p: &ParamValues) -> dhdl_core::Result<Design> {
        let n = 4096u64;
        let tile = p.dim("tile")?;
        let par = p.par("par")?;
        let toggle = p.toggle("mp")?;
        let mut b = DesignBuilder::new("dot");
        let x = b.off_chip("x", DType::F32, &[n]);
        let y = b.off_chip("y", DType::F32, &[n]);
        b.sequential(|b| {
            let acc = b.reg("acc", DType::F32, 0.0);
            b.outer(toggle, &[by(n, tile)], 1, |b, iters| {
                let i = iters[0];
                let xt = b.bram("xT", DType::F32, &[tile]);
                let yt = b.bram("yT", DType::F32, &[tile]);
                b.parallel(|b| {
                    b.tile_load(x, xt, &[i], &[tile], par);
                    b.tile_load(y, yt, &[i], &[tile], par);
                });
                b.pipe_reduce(&[by(tile, 1)], par, acc, ReduceOp::Add, |b, it| {
                    let a = b.load(xt, &[it[0]]);
                    let c = b.load(yt, &[it[0]]);
                    b.mul(a, c)
                });
            });
        });
        b.finish()
    }

    fn space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.tile("tile", 4096, 16, 1024);
        s.par("par", 16, 16);
        s.toggle("mp");
        s
    }

    fn estimator() -> Estimator {
        Estimator::calibrate_with(&Platform::maia(), 30, 11).0
    }

    #[test]
    fn strategy_parsing_accepts_the_knob_vocabulary() {
        assert_eq!(SearchStrategy::parse("random"), Ok(SearchStrategy::Random));
        assert_eq!(SearchStrategy::parse(""), Ok(SearchStrategy::Random));
        assert_eq!(
            SearchStrategy::parse(" Surrogate "),
            Ok(SearchStrategy::Surrogate(SurrogateConfig::default()))
        );
        let err = SearchStrategy::parse("genetic").unwrap_err();
        assert!(
            err.contains("genetic") && err.contains("surrogate"),
            "{err}"
        );
        assert_eq!(SearchStrategy::parse("random").unwrap().name(), "random");
        assert_eq!(
            SearchStrategy::parse("surrogate").unwrap().name(),
            "surrogate"
        );
    }

    #[test]
    fn strategy_descriptors_pin_the_tuning() {
        assert_eq!(SearchStrategy::Random.descriptor(), "random");
        let a = SearchStrategy::Surrogate(SurrogateConfig::default()).descriptor();
        let b = SearchStrategy::Surrogate(SurrogateConfig {
            batch: 99,
            ..SurrogateConfig::default()
        })
        .descriptor();
        assert_ne!(a, b, "tuning changes must change the descriptor");
    }

    #[test]
    fn exploration_finds_pareto_points() {
        let est = estimator();
        let opts = DseOptions {
            max_points: 60,
            ..DseOptions::default()
        };
        let r = explore(build_dot, &space(), &est, &opts);
        assert!(!r.points.is_empty());
        assert!(!r.pareto.is_empty());
        assert!(!r.truncated);
        let best = r.best().unwrap();
        assert!(best.valid);
        // Pareto points are sorted fastest-first and areas decrease.
        let pp: Vec<_> = r.pareto_points().collect();
        for w in pp.windows(2) {
            assert!(w[0].cycles <= w[1].cycles);
            assert!(w[0].area.alms >= w[1].area.alms);
        }
    }

    #[test]
    fn parallel_sweep_is_deterministic_across_thread_counts() {
        let est = estimator();
        let base = DseOptions {
            max_points: 48,
            ..DseOptions::default()
        };
        let runs: Vec<DseResult> = [1usize, 2, 8]
            .into_iter()
            .map(|threads| {
                let opts = DseOptions {
                    threads,
                    ..base.clone()
                };
                explore(build_dot, &space(), &est, &opts)
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
        assert!(!runs[0].points.is_empty());
    }

    #[test]
    fn mem_cap_discards_points() {
        let est = estimator();
        let opts = DseOptions {
            max_points: 500,
            mem_cap_bits: 16 * 32, // absurdly small: only tile<=16 passes
            ..DseOptions::default()
        };
        let r = explore(build_dot, &space(), &est, &opts);
        assert!(r.discarded > 0);
        // The loss is itemized, not silent: every discard is a mem-cap
        // record carrying the offending size.
        assert_eq!(r.counts.mem_cap, r.discarded);
        assert_eq!(r.counts.build_failed, 0);
        assert_eq!(r.counts.eval_failed, 0);
        assert_eq!(r.errors.len(), r.discarded);
        for (_, err) in &r.errors {
            match err {
                DseError::MemCap { bits, cap_bits } => assert!(bits > cap_bits),
                other => panic!("expected MemCap, got {other}"),
            }
        }
        for p in &r.points {
            assert!(p.params.dim("tile").unwrap() <= 16);
        }
    }

    #[test]
    fn best_scans_valid_points_not_frontier_order() {
        // A result whose `pareto` list is deliberately mis-ordered (as a
        // checkpoint merger or external producer might build it): best()
        // must still return the fastest valid point.
        let mk = |cycles: f64, alms: f64, valid: bool| DesignPoint {
            params: ParamValues::new().with("tile", cycles as u64),
            cycles,
            area: AreaReport {
                alms,
                regs: 0.0,
                dsps: 0.0,
                brams: 0.0,
            },
            valid,
        };
        let points = vec![
            mk(50.0, 10.0, true),
            mk(10.0, 90.0, true),
            mk(5.0, 999.0, false), // fastest but invalid
            mk(30.0, 40.0, true),
        ];
        let result = DseResult {
            pareto: vec![0, 3, 1], // slowest-first: pareto[0] is NOT fastest
            points,
            space_size: 4,
            discarded: 0,
            counts: OutcomeCounts::default(),
            errors: Vec::new(),
            truncated: false,
            stats: SweepStats::default(),
        };
        let best = result.best().unwrap();
        assert!(best.valid);
        assert_eq!(best.cycles, 10.0);
    }

    #[test]
    fn refinement_never_worsens_the_front() {
        let est = estimator();
        let opts = DseOptions {
            max_points: 30,
            ..DseOptions::default()
        };
        let base = explore(build_dot, &space(), &est, &opts);
        let refined = refine(build_dot, &space(), &est, &opts, &base, 3);
        assert!(refined.points.len() >= base.points.len());
        let best_before = base.best().unwrap().cycles;
        let best_after = refined.best().unwrap().cycles;
        assert!(best_after <= best_before, "{best_after} vs {best_before}");
        // No duplicates introduced.
        let mut names: Vec<String> = refined
            .points
            .iter()
            .map(|p| p.params.to_string())
            .collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn space_size_reported() {
        let est = estimator();
        let opts = DseOptions {
            max_points: 10,
            ..DseOptions::default()
        };
        let r = explore(build_dot, &space(), &est, &opts);
        assert_eq!(r.space_size, LegalSpace::new(&space()).size());
        assert!(r.points.len() <= 10);
    }

    #[test]
    fn zero_deadline_truncates_gracefully() {
        let est = estimator();
        let opts = DseOptions {
            max_points: 40,
            deadline: Some(Duration::ZERO),
            ..DseOptions::default()
        };
        let r = explore(build_dot, &space(), &est, &opts);
        assert!(r.truncated);
        assert_eq!(r.counts.skipped + r.counts.evaluated + r.discarded, 40);
        assert!(r.counts.skipped > 0);
        // A truncated result is still structurally valid.
        assert!(r.pareto.len() <= r.points.len());
    }
}
