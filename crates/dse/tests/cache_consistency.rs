//! The estimate cache must be invisible in results: sweeps with the
//! cache off, on, pre-warmed in memory, or pre-warmed from disk produce
//! byte-identical points, Pareto fronts and outcome counts — across
//! thread counts and under fault injection — and that holds for both
//! cache levels (the structural-hash map and the parameter-keyed memo
//! that lets warm sweeps skip design construction). These are the
//! acceptance criteria of the memoized estimation pipeline.

use std::path::PathBuf;
use std::sync::OnceLock;

use dhdl_core::{by, DType, Design, DesignBuilder, ParamSpace, ParamValues, ReduceOp};
use dhdl_dse::{
    explore, model_fingerprint, with_silent_panics, CachedModel, CostModel, DseOptions, DseResult,
    EstimateCache, FaultConfig, FaultInjector,
};
use dhdl_estimate::Estimator;
use dhdl_target::Platform;
use proptest::prelude::*;

fn build_dot(p: &ParamValues) -> dhdl_core::Result<Design> {
    let n = 4096u64;
    let tile = p.dim("tile")?;
    let par = p.par("par")?;
    let toggle = p.toggle("mp")?;
    let mut b = DesignBuilder::new("dot");
    let x = b.off_chip("x", DType::F32, &[n]);
    let y = b.off_chip("y", DType::F32, &[n]);
    b.sequential(|b| {
        let acc = b.reg("acc", DType::F32, 0.0);
        b.outer(toggle, &[by(n, tile)], 1, |b, iters| {
            let i = iters[0];
            let xt = b.bram("xT", DType::F32, &[tile]);
            let yt = b.bram("yT", DType::F32, &[tile]);
            b.parallel(|b| {
                b.tile_load(x, xt, &[i], &[tile], par);
                b.tile_load(y, yt, &[i], &[tile], par);
            });
            b.pipe_reduce(&[by(tile, 1)], par, acc, ReduceOp::Add, |b, it| {
                let a = b.load(xt, &[it[0]]);
                let c = b.load(yt, &[it[0]]);
                b.mul(a, c)
            });
        });
    });
    b.finish()
}

fn space() -> ParamSpace {
    let mut s = ParamSpace::new();
    s.tile("tile", 4096, 16, 1024);
    s.par("par", 16, 16);
    s.toggle("mp");
    s
}

/// Calibration is the slow part; share one estimator across all tests.
fn estimator() -> &'static Estimator {
    static EST: OnceLock<Estimator> = OnceLock::new();
    EST.get_or_init(|| Estimator::calibrate_with(&Platform::maia(), 30, 11).0)
}

fn opts(max_points: usize, threads: usize) -> DseOptions {
    DseOptions {
        max_points,
        threads,
        // Enable the parameter-keyed fast path everywhere: cost models
        // without a cache ignore it, so uncached reference sweeps are
        // unaffected while every cached sweep exercises it.
        cache_salt: Some(0xD07),
        ..DseOptions::default()
    }
}

/// Byte-level view of a Pareto front, for exact comparisons.
fn front_bits(r: &DseResult) -> Vec<(String, u64, u64)> {
    r.pareto_points()
        .map(|p| {
            (
                p.params.to_string(),
                p.cycles.to_bits(),
                p.area.alms.to_bits(),
            )
        })
        .collect()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dhdl-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir
}

#[test]
fn cached_sweep_is_bit_identical_to_uncached_across_thread_counts() {
    let est = estimator();
    for threads in [1usize, 2, 8] {
        let uncached = explore(build_dot, &space(), est, &opts(48, threads));
        assert!(!uncached.points.is_empty());
        assert!(uncached.stats.cache.is_none());

        let cache = EstimateCache::new(model_fingerprint(est));
        let cached_model = CachedModel::new(est, &cache);
        let cold = explore(build_dot, &space(), &cached_model, &opts(48, threads));
        assert_eq!(
            cold, uncached,
            "cold cached sweep diverged ({threads} threads)"
        );
        assert_eq!(front_bits(&cold), front_bits(&uncached));

        // Cold sweep populated the cache; a warm sweep answers every
        // estimator query from it and still matches bit for bit.
        let warm = explore(build_dot, &space(), &cached_model, &opts(48, threads));
        assert_eq!(
            warm, uncached,
            "warm cached sweep diverged ({threads} threads)"
        );
        let warm_cache = warm.stats.cache.expect("cached model reports stats");
        assert!(warm_cache.hits > 0, "warm sweep took no cache hits");
        assert_eq!(warm_cache.misses, 0, "warm sweep missed the cache");
        assert_eq!(warm.counts, uncached.counts);
    }
}

#[test]
fn per_sweep_cache_stats_are_deltas_not_cumulative() {
    let est = estimator();
    let cache = EstimateCache::new(model_fingerprint(est));
    let model = CachedModel::new(est, &cache);
    let cold = explore(build_dot, &space(), &model, &opts(24, 2));
    let warm = explore(build_dot, &space(), &model, &opts(24, 2));
    let cold_stats = cold.stats.cache.unwrap();
    let warm_stats = warm.stats.cache.unwrap();
    // The cold sweep misses every design it estimates; the warm sweep's
    // counters restart from zero rather than accumulating on top.
    assert_eq!(cold_stats.hits, 0);
    assert!(cold_stats.misses > 0);
    assert_eq!(warm_stats.misses, 0);
    assert_eq!(warm_stats.hits, cold_stats.misses);
    assert!(warm.stats.evaluated > 0);
    assert!(warm.stats.elapsed_secs >= 0.0);
}

#[test]
fn disk_persisted_cache_reproduces_the_sweep() {
    let est = estimator();
    let dir = tmp_dir("disk");
    let fp = model_fingerprint(est);
    let reference = explore(build_dot, &space(), est, &opts(40, 0));

    // Run cold with a disk-backed cache and flush it.
    let cache = EstimateCache::load(&dir, fp);
    assert!(cache.is_empty());
    let model = CachedModel::new(est, &cache);
    let cold = explore(build_dot, &space(), &model, &opts(40, 0));
    assert_eq!(cold, reference);
    cache.save(&dir).expect("cache flush failed");

    // A fresh process would reload the file: simulate with a new cache.
    // Both levels survive the round trip — estimates and the parameter
    // memo that lets the warm sweep skip design construction.
    let reloaded = EstimateCache::load(&dir, fp);
    assert_eq!(reloaded.len(), cache.len());
    assert_eq!(reloaded.params_len(), cache.params_len());
    assert!(reloaded.params_len() > 0, "cold sweep recorded no memo");
    let warm_model = CachedModel::new(est, &reloaded);
    let warm = explore(build_dot, &space(), &warm_model, &opts(40, 0));
    assert_eq!(warm, reference);
    let stats = warm.stats.cache.unwrap();
    assert!(stats.hits > 0);
    assert_eq!(stats.misses, 0, "pre-warmed disk cache should not miss");

    // A different fingerprint (different model/target) sees nothing.
    assert!(EstimateCache::load(&dir, fp ^ 1).is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_nan_is_not_served_from_the_cache_after_retry() {
    let est = estimator();
    let clean = explore(build_dot, &space(), est, &opts(48, 0));

    // Cache wraps the injector: the first attempt's NaN reaches the
    // cache, which must refuse to store it, so the runner's retry gets a
    // fresh (successful) evaluation whose result *is* cached.
    let cfg = FaultConfig {
        seed: 0xBAD5EED,
        nan_rate: 0.25,
        transient: true,
        ..FaultConfig::default()
    };
    let injector = FaultInjector::new(est, cfg);
    let cache = EstimateCache::new(model_fingerprint(est));
    let model = CachedModel::new(&injector, &cache);
    let faulty = with_silent_panics(|| explore(build_dot, &space(), &model, &opts(48, 0)));

    let (_, nans, _) = injector.injected();
    assert!(nans > 0, "25% NaN rate injected nothing over 48 points");
    assert_eq!(
        faulty.counts.eval_failed, 0,
        "a cached NaN would exhaust retries"
    );
    assert!(faulty.counts.recovered > 0);
    // Same points and front as the clean sweep (`recovered` differs by
    // design: it counts the absorbed faults).
    assert_eq!(faulty.points, clean.points);
    assert_eq!(front_bits(&faulty), front_bits(&clean));

    // Every cached entry is finite — the NaNs never landed.
    let warm = explore(build_dot, &space(), &model, &opts(48, 0));
    assert_eq!(warm, clean);
    assert_eq!(warm.counts.recovered, 0, "warm hits bypass the injector");
}

#[test]
fn panic_faults_and_cache_compose() {
    let est = estimator();
    let clean = explore(build_dot, &space(), est, &opts(48, 0));
    let cfg = FaultConfig {
        seed: 0xFEED,
        panic_rate: 0.15,
        nan_rate: 0.10,
        transient: true,
        ..FaultConfig::default()
    };
    let injector = FaultInjector::new(est, cfg);
    let cache = EstimateCache::new(model_fingerprint(est));
    let model = CachedModel::new(&injector, &cache);
    let faulty = with_silent_panics(|| explore(build_dot, &space(), &model, &opts(48, 0)));
    assert_eq!(faulty.points, clean.points);
    assert_eq!(front_bits(&faulty), front_bits(&clean));
    assert_eq!(faulty.counts.eval_failed, 0);
    // cache_stats passes through the injector wrapper too.
    assert!(CostModel::cache_stats(&model).is_some());
    assert!(CostModel::cache_stats(&injector).is_none());
}

#[test]
fn warm_sweep_skips_design_construction_entirely() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let est = estimator();
    let builds = AtomicUsize::new(0);
    let counting_build = |p: &ParamValues| {
        builds.fetch_add(1, Ordering::Relaxed);
        build_dot(p)
    };
    let cache = EstimateCache::new(model_fingerprint(est));
    let model = CachedModel::new(est, &cache);
    let cold = explore(counting_build, &space(), &model, &opts(48, 4));
    let cold_builds = builds.swap(0, Ordering::Relaxed);
    assert!(cold_builds >= cold.counts.evaluated);

    // This is where the warm speedup comes from: every successfully
    // evaluated point answers from the parameter memo without touching
    // `build` at all. Only discarded assignments (never memoized) are
    // rebuilt and re-discarded.
    let warm = explore(counting_build, &space(), &model, &opts(48, 4));
    assert_eq!(warm, cold);
    assert_eq!(builds.load(Ordering::Relaxed), cold.discarded);

    // Without a salt the fast path is off: every point rebuilds, and the
    // result is still identical.
    let no_salt = DseOptions {
        cache_salt: None,
        ..opts(48, 4)
    };
    builds.store(0, Ordering::Relaxed);
    let slow_warm = explore(counting_build, &space(), &model, &no_salt);
    assert_eq!(slow_warm, cold);
    assert_eq!(builds.load(Ordering::Relaxed), cold_builds);
}

#[test]
fn observation_never_perturbs_sweep_results() {
    let est = estimator();
    // Reference sweep with recording off (the default).
    dhdl_obs::init(dhdl_obs::Mode::Off);
    let off = explore(build_dot, &space(), est, &opts(48, 4));

    // Same sweep with full recording on — spans, counters and histograms
    // fire on every hot path (elaborate, estimate_net, the runner, the
    // cache) — and through the cached model so the cache counters fire
    // too. Results must be byte-identical either way.
    dhdl_obs::init(dhdl_obs::Mode::Chrome);
    let on = explore(build_dot, &space(), est, &opts(48, 4));
    let cache = EstimateCache::new(model_fingerprint(est));
    let model = CachedModel::new(est, &cache);
    let on_cached = explore(build_dot, &space(), &model, &opts(48, 4));
    dhdl_obs::init(dhdl_obs::Mode::Off);

    assert_eq!(on, off, "observation changed sweep results");
    assert_eq!(on_cached, off, "observation changed cached sweep results");
    assert_eq!(front_bits(&on), front_bits(&off));
    assert_eq!(front_bits(&on_cached), front_bits(&off));

    // And the observed sweeps actually recorded something.
    let report = dhdl_obs::recorder().snapshot();
    assert!(
        report.spans.iter().any(|s| s.name == "dse.evaluate"),
        "no dse.evaluate span recorded"
    );
    assert!(
        report.spans.iter().any(|s| s.name == "estimate_net"),
        "no estimate_net span recorded"
    );
    assert!(
        report.counters.get("cache.l2.miss").copied().unwrap_or(0) > 0,
        "cached sweep recorded no cache counters"
    );
}

#[test]
fn model_fingerprint_separates_models_and_targets() {
    let a = Estimator::calibrate_with(&Platform::maia(), 20, 1).0;
    let b = Estimator::calibrate_with(&Platform::maia(), 20, 2).0;
    assert_eq!(model_fingerprint(&a), model_fingerprint(&a));
    assert_ne!(
        model_fingerprint(&a),
        model_fingerprint(&b),
        "differently-trained models must not share a cache"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline property: for any sample seed, thread count and
    /// moderate transient fault rates, a cached sweep (cache wrapping
    /// the fault injector) equals the uncached fault-free sweep exactly.
    #[test]
    fn cached_faulty_sweeps_match_uncached_clean_sweeps(
        sample_seed in 0u64..1_000_000,
        threads in 1usize..9,
        nan_rate in 0.0f64..0.3,
        panic_rate in 0.0f64..0.2,
    ) {
        let est = estimator();
        let run_opts = DseOptions {
            max_points: 24,
            seed: sample_seed,
            threads,
            cache_salt: Some(0xD07),
            ..DseOptions::default()
        };
        let clean = explore(build_dot, &space(), est, &run_opts);
        let cfg = FaultConfig {
            seed: sample_seed ^ 0xF00D,
            nan_rate,
            panic_rate,
            transient: true,
            ..FaultConfig::default()
        };
        let injector = FaultInjector::new(est, cfg);
        let cache = EstimateCache::new(model_fingerprint(est));
        let model = CachedModel::new(&injector, &cache);
        let cold = with_silent_panics(|| explore(build_dot, &space(), &model, &run_opts));
        // `recovered` counts absorbed faults, so compare points/fronts.
        prop_assert_eq!(&cold.points, &clean.points);
        prop_assert_eq!(front_bits(&cold), front_bits(&clean));
        let warm = explore(build_dot, &space(), &model, &run_opts);
        prop_assert_eq!(&warm, &clean);
        prop_assert_eq!(front_bits(&warm), front_bits(&clean));
        prop_assert_eq!(warm.stats.cache.unwrap().misses, 0);
    }
}
