//! End-to-end determinism and resilience tests for the surrogate-guided
//! search strategy: bit-identical results across thread counts, across
//! checkpoint interrupt/resume, and graceful termination under injected
//! faults (the acceptance criteria of the surrogate-DSE work).

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

use dhdl_core::{by, DType, Design, DesignBuilder, ParamSpace, ParamValues, ReduceOp};
use dhdl_dse::{
    explore, with_silent_panics, DseOptions, DseResult, FaultConfig, FaultInjector, SearchStrategy,
    SurrogateConfig,
};
use dhdl_estimate::Estimator;
use dhdl_target::Platform;
use proptest::prelude::*;

fn build_dot(p: &ParamValues) -> dhdl_core::Result<Design> {
    let n = 4096u64;
    let tile = p.dim("tile")?;
    let par = p.par("par")?;
    let toggle = p.toggle("mp")?;
    let mut b = DesignBuilder::new("dot");
    let x = b.off_chip("x", DType::F32, &[n]);
    let y = b.off_chip("y", DType::F32, &[n]);
    b.sequential(|b| {
        let acc = b.reg("acc", DType::F32, 0.0);
        b.outer(toggle, &[by(n, tile)], 1, |b, iters| {
            let i = iters[0];
            let xt = b.bram("xT", DType::F32, &[tile]);
            let yt = b.bram("yT", DType::F32, &[tile]);
            b.parallel(|b| {
                b.tile_load(x, xt, &[i], &[tile], par);
                b.tile_load(y, yt, &[i], &[tile], par);
            });
            b.pipe_reduce(&[by(tile, 1)], par, acc, ReduceOp::Add, |b, it| {
                let a = b.load(xt, &[it[0]]);
                let c = b.load(yt, &[it[0]]);
                b.mul(a, c)
            });
        });
    });
    b.finish()
}

fn space() -> ParamSpace {
    let mut s = ParamSpace::new();
    s.tile("tile", 4096, 16, 1024);
    s.par("par", 16, 16);
    s.toggle("mp");
    s
}

/// Calibration is the slow part; share one estimator across all tests.
fn estimator() -> &'static Estimator {
    static EST: OnceLock<Estimator> = OnceLock::new();
    EST.get_or_init(|| Estimator::calibrate_with(&Platform::maia(), 30, 11).0)
}

/// Small batches so even a modest budget spans several acquisition
/// rounds (seed batch + retrain + acquire, repeatedly).
fn tuning() -> SurrogateConfig {
    SurrogateConfig {
        init: 8,
        batch: 4,
        epochs: 60,
        ..SurrogateConfig::default()
    }
}

fn opts(max_points: usize) -> DseOptions {
    DseOptions {
        max_points,
        strategy: SearchStrategy::Surrogate(tuning()),
        ..DseOptions::default()
    }
}

fn ckpt_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dhdl-surrogate-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{tag}.ckpt"))
}

fn fronts(r: &DseResult) -> Vec<(String, u64, u64)> {
    r.pareto_points()
        .map(|p| {
            (
                p.params.to_string(),
                p.cycles.to_bits(),
                p.area.alms.to_bits(),
            )
        })
        .collect()
}

#[test]
fn surrogate_run_spends_its_budget_and_finds_a_front() {
    let est = estimator();
    let r = explore(build_dot, &space(), est, &opts(24));
    assert!(!r.truncated);
    assert_eq!(r.counts.evaluated + r.counts.discarded(), 24);
    assert!(!r.pareto.is_empty());
    // Frontier invariants hold: sorted fastest-first, areas decreasing.
    let pp: Vec<_> = r.pareto_points().collect();
    for w in pp.windows(2) {
        assert!(w[0].cycles <= w[1].cycles);
        assert!(w[0].area.alms >= w[1].area.alms);
    }
    // No point evaluated twice.
    let mut names: Vec<String> = r.points.iter().map(|p| p.params.to_string()).collect();
    let n = names.len();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), n);
}

#[test]
fn surrogate_is_bit_identical_across_thread_counts() {
    let est = estimator();
    let runs: Vec<DseResult> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let o = DseOptions {
                threads,
                ..opts(24)
            };
            explore(build_dot, &space(), est, &o)
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[0], runs[2]);
    assert!(!runs[0].points.is_empty());
}

#[test]
fn interrupted_surrogate_resumes_bit_identically() {
    let est = estimator();
    let path = ckpt_path("resume");
    let _ = std::fs::remove_file(&path);

    let reference = explore(build_dot, &space(), est, &opts(24));
    assert!(!reference.truncated);

    // Interrupt: latency spikes + a tight deadline on few threads cut
    // the acquisition loop off mid-flight.
    let spike_cfg = FaultConfig {
        seed: 7,
        spike_rate: 1.0,
        spike: Duration::from_millis(15),
        ..FaultConfig::default()
    };
    let injector = FaultInjector::new(est, spike_cfg);
    let interrupted_opts = DseOptions {
        threads: 2,
        deadline: Some(Duration::from_millis(5)),
        checkpoint: Some(path.clone()),
        ..opts(24)
    };
    let partial = explore(build_dot, &space(), &injector, &interrupted_opts);
    assert!(partial.truncated, "deadline did not truncate the search");
    assert!(path.exists(), "truncated search must leave its checkpoint");

    // Resume without a deadline: the replayed loop reuses every
    // checkpointed point and the final result equals the uninterrupted
    // run's, bit for bit.
    let resume_opts = DseOptions {
        checkpoint: Some(path.clone()),
        ..opts(24)
    };
    let resumed = explore(build_dot, &space(), est, &resume_opts);
    assert!(!resumed.truncated);
    assert_eq!(resumed, reference);
    assert!(
        !path.exists(),
        "completed search must clean up its checkpoint"
    );
}

#[test]
fn transient_faults_cannot_change_the_surrogate_result() {
    let est = estimator();
    let clean = explore(build_dot, &space(), est, &opts(24));
    // The acceptance bar: 5% panics + 5% NaN estimates. Transient, so
    // the runner's retry budget recovers every point and the adaptive
    // loop sees bit-identical training data.
    let cfg = FaultConfig {
        seed: 0xBAD5EED,
        panic_rate: 0.05,
        nan_rate: 0.05,
        transient: true,
        ..FaultConfig::default()
    };
    let injector = FaultInjector::new(est, cfg);
    let faulty = with_silent_panics(|| explore(build_dot, &space(), &injector, &opts(24)));
    assert_eq!(faulty.points, clean.points);
    assert_eq!(fronts(&faulty), fronts(&clean));
    assert_eq!(faulty.counts.eval_failed, 0);
}

#[test]
fn hard_faults_terminate_with_a_valid_front() {
    let est = estimator();
    // Faults on *every* attempt: some points are lost for good. The
    // loop must still terminate within budget, account for the losses,
    // and extract a structurally valid front from what survived.
    let cfg = FaultConfig {
        seed: 0xDEAD,
        panic_rate: 0.05,
        nan_rate: 0.05,
        transient: false,
        ..FaultConfig::default()
    };
    let injector = FaultInjector::new(est, cfg);
    let r = with_silent_panics(|| explore(build_dot, &space(), &injector, &opts(24)));
    assert!(!r.truncated);
    assert_eq!(r.counts.evaluated + r.counts.discarded(), 24);
    assert_eq!(r.counts.eval_failed, r.errors.len());
    assert!(!r.points.is_empty());
    assert!(!r.pareto.is_empty());
    for w in r.pareto_points().collect::<Vec<_>>().windows(2) {
        assert!(w[0].cycles <= w[1].cycles);
        assert!(w[0].area.alms >= w[1].area.alms);
    }
}

#[test]
fn surrogate_and_random_share_checkpoints_with_nobody() {
    // A random-strategy checkpoint must not be resumed by a surrogate
    // run of the same seed/budget (indices mean different things), and
    // vice versa — the header pins the strategy.
    let est = estimator();
    let path = ckpt_path("cross");
    let _ = std::fs::remove_file(&path);
    let surrogate_opts = DseOptions {
        checkpoint: Some(path.clone()),
        deadline: Some(Duration::ZERO),
        ..opts(24)
    };
    let partial = explore(build_dot, &space(), est, &surrogate_opts);
    assert!(partial.truncated);
    assert!(path.exists());
    // A random run over the same checkpoint path starts fresh (stale
    // header) and still produces the canonical random result.
    let random_opts = DseOptions {
        max_points: 24,
        checkpoint: Some(path.clone()),
        ..DseOptions::default()
    };
    let random = explore(build_dot, &space(), est, &random_opts);
    let random_reference = explore(
        build_dot,
        &space(),
        est,
        &DseOptions {
            max_points: 24,
            ..DseOptions::default()
        },
    );
    assert_eq!(random, random_reference);
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The headline determinism property: for any seed, the surrogate
    /// strategy produces bit-identical results on 1, 2 and 8 threads
    /// and across a checkpoint interrupt/resume cycle.
    #[test]
    fn surrogate_is_deterministic_for_any_seed(seed in 0u64..1_000_000) {
        let est = estimator();
        let base = DseOptions { seed, ..opts(16) };
        let single = explore(build_dot, &space(), est, &base);
        for threads in [2usize, 8] {
            let o = DseOptions { threads, ..base.clone() };
            prop_assert_eq!(&explore(build_dot, &space(), est, &o), &single);
        }
        // Interrupt at a zero deadline, then resume to completion.
        let path = ckpt_path(&format!("prop-{seed}"));
        let _ = std::fs::remove_file(&path);
        let interrupted = DseOptions {
            deadline: Some(Duration::ZERO),
            checkpoint: Some(path.clone()),
            ..base.clone()
        };
        let partial = explore(build_dot, &space(), est, &interrupted);
        prop_assert!(partial.truncated);
        let resume = DseOptions { checkpoint: Some(path.clone()), ..base.clone() };
        let resumed = explore(build_dot, &space(), est, &resume);
        prop_assert_eq!(&resumed, &single);
        let _ = std::fs::remove_file(&path);
    }
}
