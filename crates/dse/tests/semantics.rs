//! Equality and selection semantics of the sweep result types.
//!
//! `DseResult` equality deliberately ignores `stats` (two sweeps that
//! produce identical points compare equal however fast they ran and
//! wherever their estimates came from), and `best()` must only ever
//! return a *valid* point. These contracts are what the conformance
//! harness and the bit-identity tests lean on, so they get pinned here.

use dhdl_core::ParamValues;
use dhdl_dse::{CacheStats, DesignPoint, DseResult, OutcomeCounts, SweepStats};
use dhdl_target::AreaReport;

fn area(alms: f64) -> AreaReport {
    AreaReport {
        alms,
        regs: alms * 2.0,
        dsps: 4.0,
        brams: 8.0,
    }
}

fn point(cycles: f64, alms: f64, valid: bool) -> DesignPoint {
    DesignPoint {
        params: ParamValues::new().with("tile", 8).with("par", 2),
        cycles,
        area: area(alms),
        valid,
    }
}

fn result(points: Vec<DesignPoint>, stats: SweepStats) -> DseResult {
    DseResult {
        points,
        pareto: vec![],
        space_size: 64,
        discarded: 0,
        counts: OutcomeCounts::default(),
        errors: vec![],
        truncated: false,
        stats,
    }
}

#[test]
fn equality_ignores_stats() {
    let pts = vec![point(100.0, 50.0, true), point(200.0, 25.0, true)];
    let fast = result(
        pts.clone(),
        SweepStats {
            elapsed_secs: 0.01,
            evaluated: 2,
            cache: Some(CacheStats {
                hits: 2,
                misses: 0,
                inserts: 0,
                entries: 2,
            }),
        },
    );
    let slow = result(
        pts,
        SweepStats {
            elapsed_secs: 42.0,
            evaluated: 2,
            cache: None,
        },
    );
    assert_eq!(fast, slow);
}

#[test]
fn equality_compares_everything_else() {
    let a = result(vec![point(100.0, 50.0, true)], SweepStats::default());
    let mut b = a.clone();
    b.points[0].cycles = 101.0;
    assert_ne!(a, b);
    let mut c = a.clone();
    c.truncated = true;
    assert_ne!(a, c);
    let mut d = a.clone();
    d.space_size = 65;
    assert_ne!(a, d);
    let mut e = a.clone();
    e.discarded = 1;
    assert_ne!(a, e);
}

#[test]
fn best_returns_fastest_valid_point() {
    let r = result(
        vec![
            point(50.0, 10.0, false), // fastest overall but invalid
            point(100.0, 50.0, true),
            point(80.0, 70.0, true), // fastest valid
            point(200.0, 5.0, true),
        ],
        SweepStats::default(),
    );
    let b = r.best().expect("has valid points");
    assert!(b.valid);
    assert_eq!(b.cycles, 80.0);
}

#[test]
fn best_breaks_cycle_ties_by_smaller_area() {
    let r = result(
        vec![
            point(100.0, 90.0, true),
            point(100.0, 40.0, true),
            point(100.0, 60.0, true),
        ],
        SweepStats::default(),
    );
    assert_eq!(r.best().unwrap().area.alms, 40.0);
}

#[test]
fn best_is_none_when_nothing_valid() {
    let r = result(
        vec![point(50.0, 10.0, false), point(60.0, 20.0, false)],
        SweepStats::default(),
    );
    assert!(r.best().is_none());
    let empty = result(vec![], SweepStats::default());
    assert!(empty.best().is_none());
}

#[test]
fn sweep_stats_absorb_accumulates() {
    let mut s = SweepStats {
        elapsed_secs: 1.0,
        evaluated: 10,
        cache: Some(CacheStats {
            hits: 1,
            misses: 9,
            inserts: 9,
            entries: 9,
        }),
    };
    s.absorb(SweepStats {
        elapsed_secs: 0.5,
        evaluated: 5,
        cache: Some(CacheStats {
            hits: 5,
            misses: 0,
            inserts: 0,
            entries: 9,
        }),
    });
    assert_eq!(s.elapsed_secs, 1.5);
    assert_eq!(s.evaluated, 15);
    let c = s.cache.unwrap();
    assert_eq!((c.hits, c.misses, c.inserts), (6, 9, 9));
}

#[test]
fn points_per_sec_handles_instant_sweeps() {
    let s = SweepStats {
        elapsed_secs: 0.0,
        evaluated: 100,
        cache: None,
    };
    assert_eq!(s.points_per_sec(), 0.0);
    let s = SweepStats {
        elapsed_secs: 2.0,
        evaluated: 100,
        cache: None,
    };
    assert_eq!(s.points_per_sec(), 50.0);
}
