//! End-to-end resilience tests for the parallel sweep runner: fault
//! injection, retry recovery, deadline truncation and checkpoint resume
//! (the acceptance criteria of the resilient-DSE rework).

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

use dhdl_core::{by, DType, Design, DesignBuilder, ParamSpace, ParamValues, ReduceOp};
use dhdl_dse::{
    explore, with_silent_panics, DseError, DseOptions, DseResult, FaultConfig, FaultInjector,
};
use dhdl_estimate::Estimator;
use dhdl_target::Platform;
use proptest::prelude::*;

fn build_dot(p: &ParamValues) -> dhdl_core::Result<Design> {
    let n = 4096u64;
    let tile = p.dim("tile")?;
    let par = p.par("par")?;
    let toggle = p.toggle("mp")?;
    let mut b = DesignBuilder::new("dot");
    let x = b.off_chip("x", DType::F32, &[n]);
    let y = b.off_chip("y", DType::F32, &[n]);
    b.sequential(|b| {
        let acc = b.reg("acc", DType::F32, 0.0);
        b.outer(toggle, &[by(n, tile)], 1, |b, iters| {
            let i = iters[0];
            let xt = b.bram("xT", DType::F32, &[tile]);
            let yt = b.bram("yT", DType::F32, &[tile]);
            b.parallel(|b| {
                b.tile_load(x, xt, &[i], &[tile], par);
                b.tile_load(y, yt, &[i], &[tile], par);
            });
            b.pipe_reduce(&[by(tile, 1)], par, acc, ReduceOp::Add, |b, it| {
                let a = b.load(xt, &[it[0]]);
                let c = b.load(yt, &[it[0]]);
                b.mul(a, c)
            });
        });
    });
    b.finish()
}

fn space() -> ParamSpace {
    let mut s = ParamSpace::new();
    s.tile("tile", 4096, 16, 1024);
    s.par("par", 16, 16);
    s.toggle("mp");
    s
}

/// Calibration is the slow part; share one estimator across all tests.
fn estimator() -> &'static Estimator {
    static EST: OnceLock<Estimator> = OnceLock::new();
    EST.get_or_init(|| Estimator::calibrate_with(&Platform::maia(), 30, 11).0)
}

fn opts(max_points: usize) -> DseOptions {
    DseOptions {
        max_points,
        ..DseOptions::default()
    }
}

/// Fresh per-test checkpoint path under the system temp dir.
fn ckpt_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dhdl-resilience-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{tag}.ckpt"))
}

fn fronts(r: &DseResult) -> Vec<(String, u64, u64)> {
    r.pareto_points()
        .map(|p| {
            (
                p.params.to_string(),
                p.cycles.to_bits(),
                p.area.alms.to_bits(),
            )
        })
        .collect()
}

#[test]
fn faulty_sweep_recovers_and_matches_fault_free_front() {
    let est = estimator();
    let clean = explore(build_dot, &space(), est, &opts(48));
    assert!(!clean.points.is_empty());

    // 5% injected panics + 5% NaN estimates (the acceptance bar), plus a
    // sprinkle of latency spikes; all transient, so the bounded retry
    // must recover every faulted point.
    let cfg = FaultConfig {
        seed: 0xBAD5EED,
        panic_rate: 0.05,
        nan_rate: 0.05,
        spike_rate: 0.02,
        spike: Duration::from_millis(1),
        transient: true,
    };
    let injector = FaultInjector::new(est, cfg);
    let faulty = with_silent_panics(|| explore(build_dot, &space(), &injector, &opts(48)));

    let (panics, nans, _spikes) = injector.injected();
    assert!(panics > 0, "panic rate 5% injected nothing over 48 points");
    assert!(nans > 0, "nan rate 5% injected nothing over 48 points");

    // Every faulted point is visible in the outcome counters...
    assert_eq!(faulty.counts.recovered, injector.faulted_designs());
    assert_eq!(faulty.counts.eval_failed, 0);
    // ...and the sweep still produced the exact fault-free result.
    assert_eq!(faulty.points, clean.points);
    assert_eq!(fronts(&faulty), fronts(&clean));
}

#[test]
fn hard_faults_are_recorded_not_silently_dropped() {
    let est = estimator();
    let cfg = FaultConfig {
        seed: 0xDEAD,
        panic_rate: 0.10,
        nan_rate: 0.10,
        transient: false, // faults on every attempt: retries must exhaust
        ..FaultConfig::default()
    };
    let injector = FaultInjector::new(est, cfg);
    let r = with_silent_panics(|| explore(build_dot, &space(), &injector, &opts(48)));
    assert!(
        r.counts.eval_failed > 0,
        "hard faults should exhaust retries"
    );
    assert_eq!(r.counts.eval_failed, r.errors.len());
    assert_eq!(
        r.counts.evaluated + r.counts.discarded() + r.counts.skipped,
        48
    );
    let retries_seen = r.errors.iter().all(|(_, e)| match e {
        DseError::Panic { attempts, .. } | DseError::NonFinite { attempts } => *attempts == 3,
        _ => false,
    });
    assert!(
        retries_seen,
        "hard faults must consume the full retry budget"
    );
}

#[test]
fn zero_rate_injector_is_transparent() {
    let est = estimator();
    let injector = FaultInjector::new(est, FaultConfig::default());
    let via_injector = explore(build_dot, &space(), &injector, &opts(24));
    let direct = explore(build_dot, &space(), est, &opts(24));
    assert_eq!(injector.injected(), (0, 0, 0));
    assert_eq!(injector.faulted_designs(), 0);
    assert_eq!(via_injector, direct);
}

#[test]
fn injection_schedule_is_deterministic_for_a_fixed_seed() {
    let est = estimator();
    let cfg = FaultConfig {
        seed: 42,
        panic_rate: 0.2,
        nan_rate: 0.2,
        spike_rate: 0.2,
        ..FaultConfig::default()
    };
    let a = FaultInjector::new(est, cfg.clone());
    let b = FaultInjector::new(est, cfg.clone());
    let designs: Vec<Design> = space()
        .defs()
        .iter()
        .find(|d| d.name == "tile")
        .map(|d| d.kind.legal_values())
        .unwrap()
        .into_iter()
        .map(|tile| {
            let p = ParamValues::new()
                .with("tile", tile)
                .with("par", 4)
                .with("mp", 1);
            build_dot(&p).unwrap()
        })
        .collect();
    let plans_a: Vec<_> = designs.iter().map(|d| a.plan(d)).collect();
    let plans_b: Vec<_> = designs.iter().map(|d| b.plan(d)).collect();
    assert_eq!(plans_a, plans_b);
    assert!(
        plans_a.iter().any(|p| p.panic || p.nan || p.spike),
        "20% rates over {} designs injected nothing",
        designs.len()
    );
    // A different seed reshuffles the schedule.
    let c = FaultInjector::new(
        est,
        FaultConfig {
            seed: 43,
            ..cfg.clone()
        },
    );
    let plans_c: Vec<_> = designs.iter().map(|d| c.plan(d)).collect();
    assert_ne!(plans_a, plans_c);
}

#[test]
fn interrupted_sweep_resumes_from_checkpoint() {
    let est = estimator();
    let path = ckpt_path("resume");
    let _ = std::fs::remove_file(&path);

    let reference = explore(build_dot, &space(), est, &opts(40));
    assert!(!reference.truncated);

    // Interrupt: latency spikes + a tight deadline on few threads
    // guarantee the sweep cannot finish its 40 points.
    let spike_cfg = FaultConfig {
        seed: 7,
        spike_rate: 1.0,
        spike: Duration::from_millis(15),
        ..FaultConfig::default()
    };
    let injector = FaultInjector::new(est, spike_cfg);
    let interrupted_opts = DseOptions {
        threads: 2,
        deadline: Some(Duration::from_millis(5)),
        checkpoint: Some(path.clone()),
        ..opts(40)
    };
    let partial = explore(build_dot, &space(), &injector, &interrupted_opts);
    assert!(partial.truncated, "deadline did not truncate the sweep");
    assert!(partial.counts.skipped > 0);
    assert!(path.exists(), "truncated sweep must leave its checkpoint");

    // Resume with the same seed/budget and no deadline: the final result
    // must equal the uninterrupted run's, bit for bit.
    let resume_opts = DseOptions {
        checkpoint: Some(path.clone()),
        ..opts(40)
    };
    let resumed = explore(build_dot, &space(), est, &resume_opts);
    assert!(!resumed.truncated);
    assert_eq!(resumed, reference);
    assert!(
        !path.exists(),
        "completed sweep must clean up its checkpoint"
    );
}

#[test]
fn completed_checkpoint_round_trips_without_reevaluation() {
    let est = estimator();
    let path = ckpt_path("complete");
    let _ = std::fs::remove_file(&path);
    let run_opts = DseOptions {
        checkpoint: Some(path.clone()),
        ..opts(20)
    };
    let first = explore(build_dot, &space(), est, &run_opts);
    assert!(!first.truncated);
    assert!(!path.exists());
    // Second run re-evaluates from scratch (checkpoint was consumed) and
    // reproduces the identical result.
    let second = explore(build_dot, &space(), est, &run_opts);
    assert_eq!(first, second);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline resilience property: for any fault seed and any
    /// moderate transient panic/NaN rates, an injected sweep produces a
    /// Pareto front identical to the fault-free run's.
    #[test]
    fn injected_panics_preserve_the_pareto_front(
        fault_seed in 0u64..1_000_000,
        panic_rate in 0.0f64..0.3,
        nan_rate in 0.0f64..0.3,
    ) {
        let est = estimator();
        let clean = explore(build_dot, &space(), est, &opts(24));
        let cfg = FaultConfig {
            seed: fault_seed,
            panic_rate,
            nan_rate,
            transient: true,
            ..FaultConfig::default()
        };
        let injector = FaultInjector::new(est, cfg);
        let faulty =
            with_silent_panics(|| explore(build_dot, &space(), &injector, &opts(24)));
        prop_assert_eq!(&faulty.points, &clean.points);
        prop_assert_eq!(fronts(&faulty), fronts(&clean));
        prop_assert_eq!(faulty.counts.recovered, injector.faulted_designs());
    }
}
