//! # dhdl-hls — a mock commercial high-level-synthesis estimator
//!
//! Stand-in for Vivado HLS in the exploration-speed comparison of Table IV.
//! It consumes C-like loop nests ([`HlsKernel`]) with `PIPELINE`/unroll
//! directives — the design parameters HLS exposes — and reproduces the
//! *mechanism* behind commercial HLS estimation cost: pipelining an outer
//! loop completely unrolls all inner loops into one flat dataflow graph
//! which is then modulo-scheduled under resource constraints (§V-C2).
//! Estimation in [`HlsMode::Full`] therefore slows down by orders of
//! magnitude on exactly the design points DHDL handles in microseconds.
//!
//! ```
//! use dhdl_hls::{estimate, HlsKernel, HlsLoop, HlsMode, HlsOp, HlsOpKind, ResourceLimits};
//!
//! let body = vec![
//!     HlsOp::new(HlsOpKind::Load, &[]),
//!     HlsOp::new(HlsOpKind::Mul, &[0]),
//!     HlsOp::new(HlsOpKind::Store, &[1]),
//! ];
//! let kernel = HlsKernel::new("scale")
//!     .with_loop(HlsLoop::new("L1", 128).with_body(body).pipelined(true));
//! let report = estimate(&kernel, HlsMode::Full, &ResourceLimits::default());
//! assert!(report.latency > 128);
//! ```

#![warn(missing_docs)]

mod binding;
mod estimate;
mod kernel;
mod render;
mod schedule;

pub use binding::{bind_rtl, BindReport};
pub use estimate::{estimate, HlsEstimate, HlsMode};
pub use kernel::{HlsKernel, HlsLoop, HlsOp, HlsOpKind};
pub use render::to_c;
pub use schedule::{list_schedule, modulo_schedule, unroll, FlatOp, ResourceLimits, Schedule};
