//! A C-like loop-nest IR, as consumed by commercial HLS tools.
//!
//! Mirrors the abstraction level of Figure 2 in the paper: imperative
//! loop nests over arrays, annotated with `PIPELINE` directives and unroll
//! factors — the only design parameters HLS exposes (§V-C2).

/// Operation classes with distinct latency/resource behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HlsOpKind {
    /// Integer/float addition or subtraction.
    Add,
    /// Multiplication (binds to DSP blocks).
    Mul,
    /// Division or other long-latency op.
    Div,
    /// Array read.
    Load,
    /// Array write.
    Store,
    /// Comparison / select.
    Cmp,
}

impl HlsOpKind {
    /// Pipeline latency in cycles.
    pub fn latency(self) -> u64 {
        match self {
            HlsOpKind::Add => 3,
            HlsOpKind::Mul => 4,
            HlsOpKind::Div => 14,
            HlsOpKind::Load | HlsOpKind::Store => 1,
            HlsOpKind::Cmp => 1,
        }
    }
}

/// One operation in a loop body. Dependencies index into the body's op
/// list; `accumulate` marks a loop-carried dependency (e.g. `sigma += x`).
#[derive(Debug, Clone, PartialEq)]
pub struct HlsOp {
    /// Operation class.
    pub kind: HlsOpKind,
    /// Indices of operations in the same body this op depends on.
    pub deps: Vec<usize>,
    /// Whether the op accumulates across loop iterations (creates a
    /// loop-carried dependence chain when unrolled).
    pub accumulate: bool,
}

impl HlsOp {
    /// A new op depending on earlier body ops.
    pub fn new(kind: HlsOpKind, deps: &[usize]) -> Self {
        HlsOp {
            kind,
            deps: deps.to_vec(),
            accumulate: false,
        }
    }

    /// Mark the op as a loop-carried accumulation.
    pub fn accumulating(mut self) -> Self {
        self.accumulate = true;
        self
    }
}

/// A counted loop with a straight-line body and nested child loops.
#[derive(Debug, Clone, PartialEq)]
pub struct HlsLoop {
    /// Label (e.g. `"L1"`).
    pub name: String,
    /// Trip count.
    pub trip: u64,
    /// Straight-line operations executed each iteration (before children).
    pub body: Vec<HlsOp>,
    /// Nested loops executed each iteration (after the body ops).
    pub children: Vec<HlsLoop>,
    /// `#pragma HLS PIPELINE` on this loop.
    pub pipeline: bool,
    /// `#pragma HLS UNROLL factor=` on this loop.
    pub unroll: u32,
}

impl HlsLoop {
    /// A new loop with the given label and trip count.
    pub fn new(name: &str, trip: u64) -> Self {
        HlsLoop {
            name: name.to_string(),
            trip,
            body: Vec::new(),
            children: Vec::new(),
            pipeline: false,
            unroll: 1,
        }
    }

    /// Add body operations; returns `self` for chaining.
    pub fn with_body(mut self, ops: Vec<HlsOp>) -> Self {
        self.body = ops;
        self
    }

    /// Nest a child loop.
    pub fn with_child(mut self, child: HlsLoop) -> Self {
        self.children.push(child);
        self
    }

    /// Apply a pipeline directive.
    pub fn pipelined(mut self, on: bool) -> Self {
        self.pipeline = on;
        self
    }

    /// Apply an unroll factor.
    pub fn unrolled(mut self, factor: u32) -> Self {
        self.unroll = factor.max(1);
        self
    }

    /// Number of operations in one iteration including children.
    pub fn ops_per_iter(&self) -> u64 {
        self.body.len() as u64
            + self
                .children
                .iter()
                .map(|c| c.trip * c.ops_per_iter())
                .sum::<u64>()
    }

    /// Total dynamic operations of the loop.
    pub fn total_ops(&self) -> u64 {
        self.trip * self.ops_per_iter()
    }
}

/// A top-level HLS kernel: a sequence of loops.
#[derive(Debug, Clone, PartialEq)]
pub struct HlsKernel {
    /// Kernel name.
    pub name: String,
    /// Top-level loops, executed in order.
    pub loops: Vec<HlsLoop>,
}

impl HlsKernel {
    /// A new kernel with the given name.
    pub fn new(name: &str) -> Self {
        HlsKernel {
            name: name.to_string(),
            loops: Vec::new(),
        }
    }

    /// Append a top-level loop.
    pub fn with_loop(mut self, l: HlsLoop) -> Self {
        self.loops.push(l);
        self
    }

    /// Total dynamic operation count.
    pub fn total_ops(&self) -> u64 {
        self.loops.iter().map(HlsLoop::total_ops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counting() {
        let inner = HlsLoop::new("L2", 10).with_body(vec![
            HlsOp::new(HlsOpKind::Load, &[]),
            HlsOp::new(HlsOpKind::Mul, &[0]),
            HlsOp::new(HlsOpKind::Store, &[1]),
        ]);
        let outer = HlsLoop::new("L1", 4).with_child(inner);
        assert_eq!(outer.ops_per_iter(), 30);
        assert_eq!(outer.total_ops(), 120);
        let k = HlsKernel::new("k").with_loop(outer);
        assert_eq!(k.total_ops(), 120);
    }

    #[test]
    fn builder_flags() {
        let l = HlsLoop::new("L", 8).pipelined(true).unrolled(4);
        assert!(l.pipeline);
        assert_eq!(l.unroll, 4);
        assert_eq!(HlsLoop::new("L", 8).unrolled(0).unroll, 1);
    }

    #[test]
    fn latencies_ordered() {
        assert!(HlsOpKind::Div.latency() > HlsOpKind::Mul.latency());
        assert!(HlsOpKind::Mul.latency() > HlsOpKind::Load.latency());
    }
}
