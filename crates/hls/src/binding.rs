//! RTL elaboration and operator binding.
//!
//! After scheduling, a C-to-RTL flow expands every scheduled operation
//! into bit-level cells and runs technology mapping with resource-sharing
//! search — the fixed per-design cost that keeps commercial HLS at
//! seconds per design even when no outer loop is pipelined (§V-C2's
//! "restricted" column). The mapping below is real, deterministic work:
//! each cell searches a window of previously mapped cells for a sharing
//! candidate, exactly the quadratic-in-window pattern that dominates
//! binding time in production tools.

/// Bit-level cells generated per scheduled 32-bit operation.
const CELLS_PER_OP: usize = 64;

/// Sharing-candidate search window.
const WINDOW: usize = 256;

/// Result of RTL binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BindReport {
    /// Bit-level cells before sharing.
    pub cells: usize,
    /// Cells remaining after sharing (the LUT estimate).
    pub luts: usize,
}

/// Expand `scheduled_ops` into bit-level cells and run windowed
/// resource-sharing technology mapping.
pub fn bind_rtl(scheduled_ops: usize, seed: u64) -> BindReport {
    let n = scheduled_ops.saturating_mul(CELLS_PER_OP);
    if n == 0 {
        return BindReport { cells: 0, luts: 0 };
    }
    // Deterministic pseudo-signatures for each cell (function + input set).
    let mut sig = Vec::with_capacity(n);
    let mut x = seed | 1;
    for i in 0..n {
        // xorshift64* stream.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        sig.push((x >> 16) & 0x3ff | ((i as u64 & 0x7) << 10));
    }
    // Windowed sharing search: a cell merges into an earlier cell with an
    // identical signature within the window.
    let mut alive = vec![true; n];
    let mut luts = 0usize;
    for i in 0..n {
        let lo = i.saturating_sub(WINDOW);
        let mut shared = false;
        for j in lo..i {
            if alive[j] && sig[j] == sig[i] {
                shared = true;
                break;
            }
        }
        if shared {
            alive[i] = false;
        } else {
            luts += 1;
        }
    }
    BindReport { cells: n, luts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_shares_some_cells() {
        let r = bind_rtl(100, 42);
        assert_eq!(r.cells, 6400);
        assert!(r.luts < r.cells);
        assert!(r.luts > 0);
    }

    #[test]
    fn binding_is_deterministic() {
        assert_eq!(bind_rtl(50, 7), bind_rtl(50, 7));
        assert_ne!(bind_rtl(50, 7).luts, 0);
    }

    #[test]
    fn empty_input_is_free() {
        let r = bind_rtl(0, 1);
        assert_eq!(r.cells, 0);
        assert_eq!(r.luts, 0);
    }

    #[test]
    fn cost_scales_with_ops() {
        use std::time::Instant;
        let t0 = Instant::now();
        bind_rtl(200, 3);
        let small = t0.elapsed();
        let t1 = Instant::now();
        bind_rtl(20_000, 3);
        let large = t1.elapsed();
        assert!(large > small);
    }
}
