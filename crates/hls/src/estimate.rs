//! The HLS estimation driver.
//!
//! Two modes, matching Table IV:
//! * **restricted** — outer-loop `PIPELINE` directives are ignored; each
//!   loop body is scheduled separately and latencies compose analytically.
//!   This is the "restricted design space (ignores outer loop pipelining)"
//!   column.
//! * **full** — loops marked `pipeline` have all nested loops completely
//!   unrolled into one flat DFG which is then modulo-scheduled, exactly the
//!   behaviour that makes "estimation time for Vivado HLS increase
//!   dramatically when the outer loop is pipelined" (§V-C2).

use std::time::{Duration, Instant};

use crate::binding::bind_rtl;
use crate::kernel::{HlsKernel, HlsLoop};
use crate::schedule::{list_schedule, modulo_schedule, unroll, FlatOp, ResourceLimits};

/// An HLS estimation report for one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HlsEstimate {
    /// Estimated kernel latency in cycles.
    pub latency: u64,
    /// Estimated DSP usage (peak bound multipliers).
    pub dsps: usize,
    /// Estimated LUT usage from RTL binding.
    pub luts: usize,
    /// Number of operations scheduled (graph size).
    pub scheduled_ops: usize,
    /// Wall-clock time the estimation itself took.
    pub elapsed: Duration,
}

/// Estimation mode (Table IV columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HlsMode {
    /// Ignore outer-loop pipeline directives.
    Restricted,
    /// Honor pipeline directives via full unrolling.
    Full,
}

/// Estimate a kernel's latency and resources, timing the estimation.
pub fn estimate(kernel: &HlsKernel, mode: HlsMode, limits: &ResourceLimits) -> HlsEstimate {
    let start = Instant::now();
    let mut latency = 0u64;
    let mut dsps = 0usize;
    let mut scheduled = 0usize;
    for l in &kernel.loops {
        let (lat, d, n) = estimate_loop(l, mode, limits);
        latency += lat;
        dsps = dsps.max(d);
        scheduled += n;
    }
    // RTL elaboration and operator binding over the scheduled design —
    // the fixed flow cost every HLS run pays regardless of pipelining.
    let bind = bind_rtl(scheduled, kernel.name.len() as u64 + 1);
    HlsEstimate {
        latency,
        dsps,
        luts: bind.luts,
        scheduled_ops: scheduled,
        elapsed: start.elapsed(),
    }
}

fn estimate_loop(l: &HlsLoop, mode: HlsMode, limits: &ResourceLimits) -> (u64, usize, usize) {
    let has_children = !l.children.is_empty();
    if l.pipeline && mode == HlsMode::Full && has_children {
        // Outer-loop pipelining: completely unroll everything below, then
        // modulo-schedule the (huge) flat graph. One loop iteration's graph
        // is the steady-state body; II applies across outer iterations.
        let mut one_iter = l.clone();
        one_iter.trip = 1;
        let ops: Vec<FlatOp> = unroll(&one_iter);
        let s = modulo_schedule(&ops, limits);
        let lat = s.latency + s.ii * (l.trip.saturating_sub(1));
        (lat, s.peak_muls, s.ops)
    } else if l.pipeline && !has_children {
        // Innermost pipelined loop: schedule one body (after unrolling by
        // the unroll factor), II from modulo scheduling.
        let mut body = l.clone();
        body.trip = u64::from(l.unroll.max(1));
        let ops = unroll(&body);
        let s = modulo_schedule(&ops, limits);
        let iters = l.trip.div_ceil(u64::from(l.unroll.max(1)));
        (
            s.latency + s.ii * iters.saturating_sub(1),
            s.peak_muls,
            s.ops,
        )
    } else {
        // Unpipelined: schedule the body once, children recursively;
        // latencies compose multiplicatively with trip counts.
        let mut body = l.clone();
        body.trip = u64::from(l.unroll.max(1));
        body.children.clear();
        let ops = unroll(&body);
        let s = if ops.is_empty() {
            crate::schedule::Schedule {
                latency: 0,
                ii: 1,
                peak_muls: 0,
                ops: 0,
            }
        } else {
            list_schedule(&ops, limits)
        };
        let mut per_iter = s.latency;
        let mut dsps = s.peak_muls;
        let mut n = s.ops;
        for c in &l.children {
            let (cl, cd, cn) = estimate_loop(c, mode, limits);
            per_iter += cl;
            dsps = dsps.max(cd);
            n += cn;
        }
        let iters = l.trip.div_ceil(u64::from(l.unroll.max(1)));
        (per_iter * iters.max(1), dsps, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{HlsOp, HlsOpKind};

    /// A GDA-shaped nest: outer R loop, inner C and C×C loops.
    fn gda_like(r: u64, c: u64, outer_pipeline: bool) -> HlsKernel {
        let sub = HlsLoop::new("L11", c)
            .with_body(vec![
                HlsOp::new(HlsOpKind::Load, &[]),
                HlsOp::new(HlsOpKind::Load, &[]),
                HlsOp::new(HlsOpKind::Cmp, &[0]),
                HlsOp::new(HlsOpKind::Add, &[1, 2]),
                HlsOp::new(HlsOpKind::Store, &[3]),
            ])
            .pipelined(true);
        let outer_prod = HlsLoop::new("L121", c).with_child(
            HlsLoop::new("L122", c)
                .with_body(vec![
                    HlsOp::new(HlsOpKind::Load, &[]),
                    HlsOp::new(HlsOpKind::Load, &[]),
                    HlsOp::new(HlsOpKind::Mul, &[0, 1]),
                    HlsOp::new(HlsOpKind::Add, &[2]).accumulating(),
                    HlsOp::new(HlsOpKind::Store, &[3]),
                ])
                .pipelined(true),
        );
        let l1 = HlsLoop::new("L1", r)
            .with_child(sub)
            .with_child(outer_prod)
            .pipelined(outer_pipeline);
        HlsKernel::new("gda").with_loop(l1)
    }

    #[test]
    fn restricted_ignores_outer_pipeline() {
        let limits = ResourceLimits::default();
        let k = gda_like(16, 8, true);
        let r = estimate(&k, HlsMode::Restricted, &limits);
        let f = estimate(&k, HlsMode::Full, &limits);
        // Full mode builds a much larger scheduling problem.
        assert!(f.scheduled_ops > r.scheduled_ops * 4, "{f:?} vs {r:?}");
    }

    #[test]
    fn full_mode_is_slower_to_estimate() {
        let limits = ResourceLimits::default();
        let k = gda_like(64, 48, true);
        let r = estimate(&k, HlsMode::Restricted, &limits);
        let f = estimate(&k, HlsMode::Full, &limits);
        assert!(
            f.elapsed > r.elapsed,
            "full {:?} restricted {:?}",
            f.elapsed,
            r.elapsed
        );
    }

    #[test]
    fn latency_scales_with_trip_count() {
        let limits = ResourceLimits::default();
        let small = estimate(&gda_like(8, 8, false), HlsMode::Restricted, &limits);
        let large = estimate(&gda_like(32, 8, false), HlsMode::Restricted, &limits);
        assert!(large.latency > small.latency * 3);
    }

    #[test]
    fn empty_kernel_is_zero() {
        let k = HlsKernel::new("empty");
        let e = estimate(&k, HlsMode::Full, &ResourceLimits::default());
        assert_eq!(e.latency, 0);
        assert_eq!(e.scheduled_ops, 0);
    }
}
