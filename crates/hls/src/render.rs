//! Render an [`HlsKernel`] as annotated C source — the Figure 2 view of a
//! design, with `#pragma HLS` directives where the kernel requests
//! pipelining or unrolling.

use std::fmt::Write as _;

use crate::kernel::{HlsKernel, HlsLoop, HlsOpKind};

/// Render the kernel as C-like source with HLS pragmas.
pub fn to_c(kernel: &HlsKernel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "void {}(/* array arguments */) {{", kernel.name);
    for (i, l) in kernel.loops.iter().enumerate() {
        render_loop(l, &mut out, 1, &format!("{}", i));
    }
    out.push_str("}\n");
    out
}

fn render_loop(l: &HlsLoop, out: &mut String, depth: usize, path: &str) {
    let pad = "  ".repeat(depth);
    let var = format!("i{path}");
    let _ = writeln!(
        out,
        "{pad}{}: for (int {var} = 0; {var} < {}; {var}++) {{",
        l.name, l.trip
    );
    if l.pipeline {
        let _ = writeln!(out, "{pad}  #pragma HLS PIPELINE II=1");
    }
    if l.unroll > 1 {
        let _ = writeln!(out, "{pad}  #pragma HLS UNROLL factor={}", l.unroll);
    }
    for (j, op) in l.body.iter().enumerate() {
        let pad2 = "  ".repeat(depth + 1);
        let expr = match op.kind {
            HlsOpKind::Load => format!("t{j} = in{j}[{var}];"),
            HlsOpKind::Store => format!("out[{var}] = t{};", op.deps.first().copied().unwrap_or(0)),
            HlsOpKind::Add => binop("+", j, op),
            HlsOpKind::Mul => binop("*", j, op),
            HlsOpKind::Div => binop("/", j, op),
            HlsOpKind::Cmp => binop("<", j, op),
        };
        let acc = if op.accumulate {
            " /* accumulates */"
        } else {
            ""
        };
        let _ = writeln!(out, "{pad2}{expr}{acc}");
    }
    for (k, child) in l.children.iter().enumerate() {
        render_loop(child, out, depth + 1, &format!("{path}_{k}"));
    }
    let _ = writeln!(out, "{pad}}}");
}

fn binop(sym: &str, j: usize, op: &crate::kernel::HlsOp) -> String {
    let a = op.deps.first().copied().unwrap_or(0);
    let b = op.deps.get(1).copied().unwrap_or(a);
    format!("t{j} = t{a} {sym} t{b};")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::HlsOp;

    fn sample() -> HlsKernel {
        let inner = HlsLoop::new("L2", 96)
            .with_body(vec![
                HlsOp::new(HlsOpKind::Load, &[]),
                HlsOp::new(HlsOpKind::Mul, &[0, 0]),
                HlsOp::new(HlsOpKind::Add, &[1]).accumulating(),
                HlsOp::new(HlsOpKind::Store, &[2]),
            ])
            .pipelined(true)
            .unrolled(4);
        HlsKernel::new("gda").with_loop(HlsLoop::new("L1", 360).with_child(inner))
    }

    #[test]
    fn renders_figure2_shapes() {
        let c = to_c(&sample());
        assert!(c.contains("void gda("));
        assert!(c.contains("L1: for (int"));
        assert!(c.contains("L2: for (int"));
        assert!(c.contains("#pragma HLS PIPELINE II=1"));
        assert!(c.contains("#pragma HLS UNROLL factor=4"));
        assert!(c.contains("/* accumulates */"));
        assert_eq!(c.matches('{').count(), c.matches('}').count());
    }

    #[test]
    fn unpipelined_loops_have_no_pragma() {
        let k = HlsKernel::new("k")
            .with_loop(HlsLoop::new("L", 8).with_body(vec![HlsOp::new(HlsOpKind::Load, &[])]));
        let c = to_c(&k);
        assert!(!c.contains("#pragma"));
    }
}
