//! Scheduling and binding over flattened dataflow graphs.
//!
//! This is the mechanism that makes commercial HLS estimation slow on
//! outer-loop pipelining: "the tool completely unrolls all inner loops
//! before pipelining the outer loop. This creates a large graph that
//! complicates scheduling" (§V-C2). We reproduce exactly that: full
//! unrolling into a flat DFG followed by resource-constrained list
//! scheduling and iterative modulo scheduling for the initiation interval.

use std::collections::BTreeMap;

use crate::kernel::{HlsLoop, HlsOpKind};

/// Per-cycle resource issue limits, modeling a bounded binding of
/// operations onto shared functional units.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceLimits {
    /// Simultaneous multiplies per cycle (DSP-bound).
    pub muls: usize,
    /// Simultaneous adds per cycle.
    pub adds: usize,
    /// Simultaneous divisions per cycle.
    pub divs: usize,
    /// Simultaneous memory ports.
    pub mem_ports: usize,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits {
            muls: 64,
            adds: 128,
            divs: 8,
            mem_ports: 64,
        }
    }
}

impl ResourceLimits {
    fn limit(&self, kind: HlsOpKind) -> usize {
        match kind {
            HlsOpKind::Mul => self.muls,
            HlsOpKind::Add | HlsOpKind::Cmp => self.adds,
            HlsOpKind::Div => self.divs,
            HlsOpKind::Load | HlsOpKind::Store => self.mem_ports,
        }
    }
}

/// A flattened operation: kind plus dependencies by flat index.
#[derive(Debug, Clone)]
pub struct FlatOp {
    /// Operation class.
    pub kind: HlsOpKind,
    /// Dependencies (indices into the flat op list; always smaller).
    pub deps: Vec<usize>,
}

/// Fully unroll a loop nest into a flat dataflow graph.
///
/// Each iteration's body is replicated; `accumulate` ops chain across
/// iterations (loop-carried dependence), all other ops depend only within
/// their own iteration.
pub fn unroll(l: &HlsLoop) -> Vec<FlatOp> {
    let mut out = Vec::new();
    let mut accum_chain: BTreeMap<usize, usize> = BTreeMap::new();
    unroll_into(l, &mut out, &mut accum_chain, 0);
    out
}

fn unroll_into(
    l: &HlsLoop,
    out: &mut Vec<FlatOp>,
    accum_chain: &mut BTreeMap<usize, usize>,
    chain_key_base: usize,
) {
    for _iter in 0..l.trip {
        let base = out.len();
        for (bi, op) in l.body.iter().enumerate() {
            let mut deps: Vec<usize> = op.deps.iter().map(|&d| base + d).collect();
            if op.accumulate {
                let key = chain_key_base + bi;
                if let Some(&prev) = accum_chain.get(&key) {
                    deps.push(prev);
                }
                accum_chain.insert(key, base + bi);
            }
            out.push(FlatOp {
                kind: op.kind,
                deps,
            });
        }
        for (ci, child) in l.children.iter().enumerate() {
            unroll_into(child, out, accum_chain, chain_key_base + 1000 * (ci + 1));
        }
    }
}

/// Result of scheduling a DFG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Schedule {
    /// Total latency in cycles.
    pub latency: u64,
    /// Initiation interval achieved (1 for unpipelined single bodies).
    pub ii: u64,
    /// Peak concurrent multipliers (DSP estimate).
    pub peak_muls: usize,
    /// Number of operations scheduled.
    pub ops: usize,
}

/// Resource-constrained list scheduling of a flat DFG.
///
/// Greedy ASAP with per-cycle issue limits: each op is placed at the
/// earliest cycle after its dependencies complete that still has a free
/// issue slot for its resource class. Deliberately the same O(n·wait)
/// algorithm class commercial tools pay on huge unrolled graphs.
pub fn list_schedule(ops: &[FlatOp], limits: &ResourceLimits) -> Schedule {
    let mut finish = vec![0u64; ops.len()];
    // Issue slots used per (cycle, resource-class); cycles appear lazily.
    let mut used: BTreeMap<(u64, u8), usize> = BTreeMap::new();
    let mut latency = 0u64;
    let mut peak_muls = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let ready = op.deps.iter().map(|&d| finish[d]).max().unwrap_or(0);
        let class = class_of(op.kind);
        let limit = limits.limit(op.kind).max(1);
        let mut t = ready;
        loop {
            let slot = used.entry((t, class)).or_insert(0);
            if *slot < limit {
                *slot += 1;
                if op.kind == HlsOpKind::Mul {
                    peak_muls = peak_muls.max(*slot);
                }
                break;
            }
            t += 1;
        }
        finish[i] = t + op.kind.latency();
        latency = latency.max(finish[i]);
    }
    Schedule {
        latency,
        ii: 1,
        peak_muls,
        ops: ops.len(),
    }
}

/// Iterative modulo scheduling: find the smallest initiation interval for
/// a pipelined loop whose unrolled body is `ops`.
///
/// Tries successive II values starting from the resource-constrained lower
/// bound, re-running a modulo reservation check each time — the iterative
/// search that dominates HLS runtime on large graphs.
pub fn modulo_schedule(ops: &[FlatOp], limits: &ResourceLimits) -> Schedule {
    let base = list_schedule(ops, limits);
    // Resource minimum II.
    let mut counts: BTreeMap<u8, usize> = BTreeMap::new();
    for op in ops {
        *counts.entry(class_of(op.kind)).or_insert(0) += 1;
    }
    let res_mii = counts
        .iter()
        .map(|(&c, &n)| n.div_ceil(limit_of(limits, c)))
        .max()
        .unwrap_or(1) as u64;
    // Recurrence minimum II from loop-carried chains: longest dependence
    // cycle per unrolled instance is approximated by the accumulation
    // latency (already serialized in the flat graph).
    let mut ii = res_mii.max(1);
    loop {
        if modulo_feasible(ops, limits, ii) {
            break;
        }
        ii += 1 + ii / 8; // geometric backoff like real IMS implementations
    }
    Schedule {
        latency: base.latency + ii,
        ii,
        peak_muls: base.peak_muls,
        ops: ops.len(),
    }
}

/// Greedy modulo scheduling attempt at initiation interval `ii`: place
/// each op at the earliest cycle after its dependencies whose modulo
/// reservation slot still has a free functional unit. Fails only when an
/// op's resource class has every one of its `ii` slots saturated.
fn modulo_feasible(ops: &[FlatOp], limits: &ResourceLimits, ii: u64) -> bool {
    let mut start = vec![0u64; ops.len()];
    let mut table: BTreeMap<(u64, u8), usize> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        let ready = op
            .deps
            .iter()
            .map(|&d| start[d] + ops[d].kind.latency())
            .max()
            .unwrap_or(0);
        let class = class_of(op.kind);
        let limit = limit_of(limits, class);
        let mut t = ready;
        let mut scanned = 0u64;
        loop {
            let used = table.entry((t % ii, class)).or_insert(0);
            if *used < limit {
                *used += 1;
                start[i] = t;
                break;
            }
            t += 1;
            scanned += 1;
            if scanned > ii {
                return false; // every modulo slot of this class is full
            }
        }
    }
    true
}

fn class_of(kind: HlsOpKind) -> u8 {
    match kind {
        HlsOpKind::Add | HlsOpKind::Cmp => 0,
        HlsOpKind::Mul => 1,
        HlsOpKind::Div => 2,
        HlsOpKind::Load | HlsOpKind::Store => 3,
    }
}

fn limit_of(limits: &ResourceLimits, class: u8) -> usize {
    match class {
        0 => limits.adds,
        1 => limits.muls,
        2 => limits.divs,
        _ => limits.mem_ports,
    }
    .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::HlsOp;

    fn chain_loop(trip: u64) -> HlsLoop {
        HlsLoop::new("L", trip).with_body(vec![
            HlsOp::new(HlsOpKind::Load, &[]),
            HlsOp::new(HlsOpKind::Mul, &[0]),
            HlsOp::new(HlsOpKind::Add, &[1]).accumulating(),
        ])
    }

    #[test]
    fn unroll_replicates_and_chains() {
        let ops = unroll(&chain_loop(4));
        assert_eq!(ops.len(), 12);
        // The accumulating add of iteration 1 depends on iteration 0's add.
        assert!(ops[5].deps.contains(&2));
        assert!(ops[11].deps.contains(&8));
    }

    #[test]
    fn list_schedule_respects_dependences() {
        let ops = unroll(&chain_loop(8));
        let s = list_schedule(&ops, &ResourceLimits::default());
        // 8 chained adds of latency 3 => at least 24 cycles.
        assert!(s.latency >= 24, "{s:?}");
        assert_eq!(s.ops, 24);
    }

    #[test]
    fn resource_limits_increase_latency() {
        let wide = HlsLoop::new("L", 64).with_body(vec![
            HlsOp::new(HlsOpKind::Load, &[]),
            HlsOp::new(HlsOpKind::Mul, &[0]),
            HlsOp::new(HlsOpKind::Store, &[1]),
        ]);
        let ops = unroll(&wide);
        let fast = list_schedule(&ops, &ResourceLimits::default());
        let tight = list_schedule(
            &ops,
            &ResourceLimits {
                muls: 1,
                ..ResourceLimits::default()
            },
        );
        assert!(tight.latency > fast.latency);
    }

    #[test]
    fn modulo_ii_grows_with_pressure() {
        let ops = unroll(&chain_loop(32));
        let loose = modulo_schedule(&ops, &ResourceLimits::default());
        let tight = modulo_schedule(
            &ops,
            &ResourceLimits {
                adds: 1,
                muls: 1,
                ..ResourceLimits::default()
            },
        );
        assert!(tight.ii >= loose.ii);
        assert!(loose.ii >= 1);
    }
}
