//! Property tests for the HLS baseline: scheduling invariants across
//! randomly shaped loop nests.

use dhdl_hls::{estimate, HlsKernel, HlsLoop, HlsMode, HlsOp, HlsOpKind, ResourceLimits};
use proptest::prelude::*;

fn random_nest(outer_trip: u64, inner_trip: u64, body_ops: usize, accumulate: bool) -> HlsKernel {
    let mut body = vec![HlsOp::new(HlsOpKind::Load, &[])];
    for i in 1..body_ops.max(1) {
        let kind = match i % 3 {
            0 => HlsOpKind::Add,
            1 => HlsOpKind::Mul,
            _ => HlsOpKind::Cmp,
        };
        body.push(HlsOp::new(kind, &[i - 1]));
    }
    if accumulate {
        let last = body.len() - 1;
        body.push(HlsOp::new(HlsOpKind::Add, &[last]).accumulating());
    }
    let inner = HlsLoop::new("Li", inner_trip)
        .with_body(body)
        .pipelined(true);
    HlsKernel::new("k").with_loop(
        HlsLoop::new("Lo", outer_trip)
            .with_child(inner)
            .pipelined(true),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full-mode scheduling always builds a graph at least as large as
    /// restricted mode, and both latencies scale with the outer trip.
    #[test]
    fn full_mode_schedules_more(outer in 2u64..12, inner in 2u64..24, ops in 1usize..8) {
        let limits = ResourceLimits::default();
        let k = random_nest(outer, inner, ops, true);
        let r = estimate(&k, HlsMode::Restricted, &limits);
        let f = estimate(&k, HlsMode::Full, &limits);
        prop_assert!(f.scheduled_ops >= r.scheduled_ops);
        prop_assert!(r.latency > 0);
        prop_assert!(f.latency > 0);
        // Latency grows with the workload.
        let bigger = random_nest(outer * 2, inner, ops, true);
        let r2 = estimate(&bigger, HlsMode::Restricted, &limits);
        prop_assert!(r2.latency >= r.latency);
    }

    /// Tighter resource limits never reduce latency.
    #[test]
    fn limits_are_monotone(outer in 2u64..8, inner in 4u64..16, ops in 2usize..8) {
        let k = random_nest(outer, inner, ops, false);
        let loose = estimate(&k, HlsMode::Full, &ResourceLimits::default());
        let tight = estimate(
            &k,
            HlsMode::Full,
            &ResourceLimits { muls: 1, adds: 1, divs: 1, mem_ports: 1 },
        );
        prop_assert!(tight.latency >= loose.latency);
    }

    /// Estimation is deterministic.
    #[test]
    fn estimation_is_deterministic(outer in 2u64..8, inner in 2u64..16, ops in 1usize..6) {
        let limits = ResourceLimits::default();
        let k = random_nest(outer, inner, ops, true);
        let a = estimate(&k, HlsMode::Full, &limits);
        let b = estimate(&k, HlsMode::Full, &limits);
        prop_assert_eq!(a.latency, b.latency);
        prop_assert_eq!(a.luts, b.luts);
        prop_assert_eq!(a.scheduled_ops, b.scheduled_ops);
    }
}
