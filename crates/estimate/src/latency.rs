//! Cycle-count estimation (§IV-B1).
//!
//! A recursive analysis pass over the hierarchical IR: the total runtime of
//! `MetaPipe` and `Sequential` nodes is calculated from the runtimes of the
//! controllers they contain; the propagation delay of one `Pipe` iteration
//! is the critical path of its body (depth-first search over the subgraph);
//! iteration counts come from the counter chains (dataset annotations plus
//! tiling factors). Off-chip transfers use the DRAM model's command
//! count/length cost with static contention from competing accessors.

use std::collections::BTreeMap;

use dhdl_core::analysis::traversal::parent_map;
use dhdl_core::{Design, NodeId, NodeKind, Pattern, TileSpec};
use dhdl_synth::chardata::{prim_cost, reduce_tree_latency};
use dhdl_synth::{pipe_depth, Netlist};
use dhdl_target::Platform;

/// Fixed control overhead (in cycles) for starting/finishing one controller
/// execution: enable/done handshake through the parent.
const CTRL_OVERHEAD: f64 = 2.0;

/// Estimate the total execution cycles of a design on a platform.
pub fn estimate_cycles(design: &Design, platform: &Platform) -> f64 {
    cycles_with(design, platform, None)
}

/// [`estimate_cycles`], reusing the pipe critical-path depths recorded on
/// an already-elaborated [`Netlist`] of the same design instead of
/// re-scheduling every pipe body. Identical result to `estimate_cycles`
/// by construction (the netlist depths come from the same ASAP schedule).
pub fn estimate_cycles_net(design: &Design, platform: &Platform, net: &Netlist) -> f64 {
    cycles_with(design, platform, Some(net))
}

fn cycles_with(design: &Design, platform: &Platform, net: Option<&Netlist>) -> f64 {
    let ctx = Ctx {
        design,
        platform,
        parents: parent_map(design),
        reps: replication_map(design),
        net,
    };
    ctx.cycles(design.top())
}

/// One controller's estimated contribution to the design's runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyEntry {
    /// The controller node.
    pub ctrl: NodeId,
    /// Template kind plus id, e.g. `"Pipe %12"`.
    pub label: String,
    /// Estimated cycles for one execution of the controller.
    pub per_execution: f64,
    /// Number of times the controller executes over the whole run
    /// (product of ancestor trip counts, divided by their parallelization).
    pub executions: f64,
    /// `per_execution * executions` — comparable to the simulator's
    /// profile (nested controllers overlap their parents).
    pub total: f64,
}

/// Per-controller estimated cycle breakdown, heaviest first — the
/// analytic counterpart of the simulator's execution profile, used for
/// bottleneck attribution without running anything.
pub fn estimate_breakdown(design: &Design, platform: &Platform) -> Vec<LatencyEntry> {
    let ctx = Ctx {
        design,
        platform,
        parents: parent_map(design),
        reps: replication_map(design),
        net: None,
    };
    let mut entries = Vec::new();
    // Executions of each controller: product of ancestor effective trip
    // counts (total iterations / par).
    fn walk(ctx: &Ctx, design: &Design, ctrl: NodeId, execs: f64, entries: &mut Vec<LatencyEntry>) {
        let per = ctx.cycles(ctrl);
        entries.push(LatencyEntry {
            ctrl,
            label: format!("{} {}", design.kind(ctrl).template_name(), ctrl),
            per_execution: per,
            executions: execs,
            total: per * execs,
        });
        let child_execs = match design.kind(ctrl) {
            NodeKind::MetaPipe(s) | NodeKind::Sequential(s) => {
                execs * (s.ctr.total_iters() as f64 / f64::from(s.par.max(1))).ceil()
            }
            _ => execs,
        };
        for &st in design.stages(ctrl) {
            walk(ctx, design, st, child_execs, entries);
        }
    }
    walk(&ctx, design, design.top(), 1.0, &mut entries);
    entries.sort_by(|a, b| b.total.total_cmp(&a.total));
    entries
}

/// Product of ancestor parallelization factors for every controller: how
/// many replicas of it exist in hardware.
fn replication_map(design: &Design) -> BTreeMap<NodeId, f64> {
    let mut reps = BTreeMap::new();
    fn rec(design: &Design, id: NodeId, rep: f64, reps: &mut BTreeMap<NodeId, f64>) {
        reps.insert(id, rep);
        let child_rep = match design.kind(id) {
            NodeKind::MetaPipe(s) | NodeKind::Sequential(s) => rep * f64::from(s.par),
            _ => rep,
        };
        for &st in design.stages(id) {
            rec(design, st, child_rep, reps);
        }
    }
    rec(design, design.top(), 1.0, &mut reps);
    reps
}

struct Ctx<'a> {
    design: &'a Design,
    platform: &'a Platform,
    parents: BTreeMap<NodeId, NodeId>,
    reps: BTreeMap<NodeId, f64>,
    /// Elaborated netlist of the same design, if the caller already has
    /// one: supplies recorded pipe depths so bodies are not re-scheduled.
    net: Option<&'a Netlist>,
}

impl Ctx<'_> {
    fn cycles(&self, ctrl: NodeId) -> f64 {
        match self.design.kind(ctrl) {
            NodeKind::Pipe(p) => {
                let iters = (p.ctr.total_iters() as f64 / f64::from(p.par)).ceil();
                let mut depth =
                    self.net
                        .and_then(|n| n.pipe_depth(ctrl))
                        .unwrap_or_else(|| pipe_depth(self.design, p)) as f64;
                if let (Some(r), Pattern::Reduce(op)) = (&p.reduce, p.pattern) {
                    let ty = self.design.ty(r.reg);
                    depth += reduce_tree_latency(op.prim(), ty, p.par) as f64;
                    depth += prim_cost(op.prim(), ty).latency as f64;
                }
                // II = 1: one iteration enters the pipeline per cycle.
                depth + iters.max(1.0) + CTRL_OVERHEAD
            }
            NodeKind::Sequential(s) => {
                let iters = (s.ctr.total_iters() as f64 / f64::from(s.par)).ceil();
                let mut body: f64 = s.stages.iter().map(|&st| self.cycles(st)).sum();
                body += CTRL_OVERHEAD * s.stages.len() as f64;
                body += self.fold_cycles(ctrl);
                iters.max(1.0) * body + CTRL_OVERHEAD
            }
            NodeKind::MetaPipe(s) => {
                // (N-1) * max(stage) + sum(stages)  (§IV-B).
                let n = (s.ctr.total_iters() as f64 / f64::from(s.par))
                    .ceil()
                    .max(1.0);
                let mut stage_times: Vec<f64> = s
                    .stages
                    .iter()
                    .map(|&st| self.cycles(st) + CTRL_OVERHEAD)
                    .collect();
                let fold = self.fold_cycles(ctrl);
                if fold > 0.0 {
                    stage_times.push(fold + CTRL_OVERHEAD);
                }
                let sum: f64 = stage_times.iter().sum();
                let max = stage_times.iter().cloned().fold(0.0, f64::max);
                (n - 1.0) * max + sum + CTRL_OVERHEAD
            }
            NodeKind::ParallelCtrl { stages, .. } => {
                let max = stages.iter().map(|&st| self.cycles(st)).fold(0.0, f64::max);
                max + CTRL_OVERHEAD
            }
            NodeKind::TileLoad(t) | NodeKind::TileStore(t) => self.transfer_cycles(ctrl, t),
            _ => 0.0,
        }
    }

    /// Cycles of the implicit fold stage of an outer controller: one
    /// element-wise combine per accumulator element.
    fn fold_cycles(&self, ctrl: NodeId) -> f64 {
        let (NodeKind::MetaPipe(s) | NodeKind::Sequential(s)) = self.design.kind(ctrl) else {
            return 0.0;
        };
        let Some(f) = &s.fold else {
            return 0.0;
        };
        let ty = self.design.ty(f.accum);
        let (elements, lanes) = match self.design.kind(f.accum) {
            NodeKind::Bram(b) => (b.elements() as f64, f64::from(b.banks.max(1))),
            _ => (1.0, 1.0), // register fold
        };
        elements / lanes + prim_cost(f.op.prim(), ty).latency as f64
    }

    /// The channel-occupancy structure of a transfer: `(commands,
    /// run_bytes)`. A command covers one contiguous run; if the innermost
    /// tile extent covers the full innermost off-chip dimension,
    /// consecutive rows are contiguous in DRAM and merge into one long
    /// command.
    fn transfer_shape(&self, t: &TileSpec) -> (u64, u64) {
        let elem_bytes = u64::from(self.design.ty(t.offchip).bits()).div_ceil(8);
        let NodeKind::OffChip { dims } = self.design.kind(t.offchip) else {
            return (0, 0);
        };
        let inner = *t.tile.last().unwrap_or(&1);
        let full_row = dims.last().is_some_and(|&d| d == inner);
        let outer: u64 = t.tile[..t.tile.len().saturating_sub(1)].iter().product();
        if full_row || t.tile.len() == 1 {
            (1, inner * outer.max(1) * elem_bytes)
        } else {
            (outer.max(1), inner * elem_bytes)
        }
    }

    /// Channel data/issue occupancy of one execution of a transfer,
    /// excluding command latency, scaled by its hardware replication.
    fn channel_cycles(&self, ctrl: NodeId, t: &TileSpec) -> f64 {
        let (commands, run_bytes) = self.transfer_shape(t);
        if commands == 0 {
            return 0.0;
        }
        let dram = &self.platform.dram;
        let data = dram.burst_cycles(run_bytes) * commands as f64;
        let issue = (dram.command_issue_cycles * commands) as f64;
        data.max(issue) * self.reps.get(&ctrl).copied().unwrap_or(1.0)
    }

    /// Analytic cycles of a tile transfer, including command structure and
    /// contention from competing accessors (§IV-B1): the shared channel
    /// also carries the traffic of every transfer that can be active at
    /// the same time, so their occupancy adds to this one's.
    fn transfer_cycles(&self, ctrl: NodeId, t: &TileSpec) -> f64 {
        let own = self.channel_cycles(ctrl, t);
        if own == 0.0 {
            return 0.0;
        }
        let competing = self.contention_cycles(ctrl);
        self.platform.dram.command_latency_cycles as f64 + own + competing
    }

    /// Static contention estimate: the channel occupancy of every transfer
    /// that can overlap with `xfer` (any transfer whose least common
    /// ancestor is a `MetaPipe` — stages overlap — or a `Parallel`
    /// container).
    fn contention_cycles(&self, xfer: NodeId) -> f64 {
        let mut total = 0.0;
        for ctrl in self.design.controllers() {
            if ctrl == xfer {
                continue;
            }
            let (NodeKind::TileLoad(t) | NodeKind::TileStore(t)) = self.design.kind(ctrl) else {
                continue;
            };
            let lca = self.lca(xfer, ctrl);
            if matches!(
                self.design.kind(lca),
                NodeKind::MetaPipe(_) | NodeKind::ParallelCtrl { .. }
            ) {
                total += self.channel_cycles(ctrl, t);
            }
        }
        total
    }

    fn ancestors(&self, mut id: NodeId) -> Vec<NodeId> {
        let mut chain = vec![id];
        while let Some(&p) = self.parents.get(&id) {
            if p == id {
                break;
            }
            chain.push(p);
            id = p;
        }
        chain
    }

    fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let aa = self.ancestors(a);
        let bb = self.ancestors(b);
        for x in &aa {
            if bb.contains(x) {
                return *x;
            }
        }
        self.design.top()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::{by, DType, DesignBuilder, ReduceOp};

    fn platform() -> Platform {
        Platform::maia()
    }

    fn streaming(toggle: bool, par: u32, tile: u64) -> Design {
        let n = 4096;
        let mut b = DesignBuilder::new("stream");
        let x = b.off_chip("x", DType::F32, &[n]);
        let y = b.off_chip("y", DType::F32, &[n]);
        b.sequential(|b| {
            b.outer(toggle, &[by(n, tile)], 1, |b, iters| {
                let i = iters[0];
                let xt = b.bram("xT", DType::F32, &[tile]);
                let yt = b.bram("yT", DType::F32, &[tile]);
                b.tile_load(x, xt, &[i], &[tile], par);
                b.pipe(&[by(tile, 1)], par, |b, it| {
                    let v = b.load(xt, &[it[0]]);
                    let w = b.mul(v, v);
                    b.store(yt, &[it[0]], w);
                });
                b.tile_store(y, yt, &[i], &[tile], par);
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn metapipe_beats_sequential() {
        let p = platform();
        let seq = estimate_cycles(&streaming(false, 1, 256), &p);
        let meta = estimate_cycles(&streaming(true, 1, 256), &p);
        assert!(
            meta < seq,
            "coarse-grained pipelining must overlap stages: {meta} vs {seq}"
        );
    }

    #[test]
    fn parallelism_reduces_compute_time() {
        let p = platform();
        let slow = estimate_cycles(&streaming(false, 1, 256), &p);
        let fast = estimate_cycles(&streaming(false, 8, 256), &p);
        assert!(fast < slow);
    }

    #[test]
    fn larger_tiles_amortize_latency() {
        let p = platform();
        let small = estimate_cycles(&streaming(true, 1, 64), &p);
        let big = estimate_cycles(&streaming(true, 1, 1024), &p);
        assert!(big < small, "{big} vs {small}");
    }

    #[test]
    fn reduce_pipe_counts_tree_latency() {
        let p = platform();
        let build = |par: u32| {
            let mut b = DesignBuilder::new("red");
            b.sequential(|b| {
                let acc = b.reg("acc", DType::F32, 0.0);
                let m = b.bram("m", DType::F32, &[64]);
                b.pipe_reduce(&[by(64, 1)], par, acc, ReduceOp::Add, |b, it| {
                    b.load(m, &[it[0]])
                });
            });
            b.finish().unwrap()
        };
        let c1 = estimate_cycles(&build(1), &p);
        let c8 = estimate_cycles(&build(8), &p);
        // 8 lanes: 64/8 = 8 iterations instead of 64, despite tree latency.
        assert!(c8 < c1);
    }

    #[test]
    fn breakdown_top_entry_is_the_design() {
        let p = platform();
        let d = streaming(true, 2, 256);
        let total = estimate_cycles(&d, &p);
        let entries = estimate_breakdown(&d, &p);
        // The heaviest entry is the root controller and matches the total.
        assert_eq!(entries[0].ctrl, d.top());
        assert!((entries[0].total - total).abs() < 1e-9);
        // Every controller appears exactly once.
        assert_eq!(entries.len(), d.controllers().len());
        // Nested entries never exceed the root.
        for e in &entries {
            assert!(e.total <= entries[0].total * 1.5, "{e:?}");
        }
    }

    #[test]
    fn contention_counts_parallel_siblings() {
        let mut b = DesignBuilder::new("par");
        let x = b.off_chip("x", DType::F32, &[1024]);
        let y = b.off_chip("y", DType::F32, &[1024]);
        b.sequential(|b| {
            let xt = b.bram("xT", DType::F32, &[1024]);
            let yt = b.bram("yT", DType::F32, &[1024]);
            let z = b.index_const(0);
            b.parallel(|b| {
                b.tile_load(x, xt, &[z], &[1024], 1);
                b.tile_load(y, yt, &[z], &[1024], 1);
            });
            b.pipe(&[by(1024, 1)], 1, |b, it| {
                let v = b.load(xt, &[it[0]]);
                let w = b.load(yt, &[it[0]]);
                let s = b.add(v, w);
                b.store(xt, &[it[0]], s);
            });
        });
        let d = b.finish().unwrap();
        let p = platform();
        let cycles = estimate_cycles(&d, &p);
        // Two concurrent loads of 4 KiB at 250 B/cycle with contention 2
        // must take at least 2 * 4096/250 cycles plus compute.
        assert!(cycles > 2.0 * 4096.0 / 250.0);
    }
}
