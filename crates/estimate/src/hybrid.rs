//! The hybrid area estimator (§IV-B2).
//!
//! Raw resource counts come from the characterized template models
//! (via [`dhdl_synth::elaborate`]). Global low-level effects — routing
//! LUTs, register duplication, unavailable LUTs — are predicted by small
//! neural networks over 11 design features; duplicated block RAMs are a
//! linear function of the predicted routing LUTs. LUT packing then closes
//! the estimate: routing LUTs are assumed packable, all packable LUTs are
//! assumed packed in pairs, and registers beyond two per compute unit
//! occupy their own ALMs.

use dhdl_core::Design;
use dhdl_mlp::Regressor;
use dhdl_synth::{elaborate, Netlist};
use dhdl_target::{AreaReport, FpgaTarget};

/// Number of features fed to each correction network (the paper's networks
/// have "eleven input nodes").
pub const N_FEATURES: usize = 11;

/// Extract the 11-dimensional feature vector of an elaborated netlist.
pub fn features(net: &Netlist) -> Vec<f64> {
    vec![
        net.raw.luts(),
        net.raw.lut_packable,
        net.raw.regs,
        net.raw.dsps,
        net.raw.brams,
        net.features.prims,
        net.features.mems,
        net.features.ctrls,
        net.features.depth,
        net.features.edges,
        net.features.avg_width,
    ]
}

/// The trained hybrid area model: three correction networks plus the BRAM
/// duplication linear model. Application-independent; trained once per
/// target device and toolchain (§IV-B2).
///
/// The networks predict scale-free *fractions* (routing LUTs per logic
/// LUT, duplicated registers per raw register, unavailable-LUT overhead
/// per used ALM), which are then applied to the raw counts; this keeps
/// the small networks accurate across the three orders of magnitude a
/// design space spans.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaEstimator {
    pub(crate) routing: Regressor,
    pub(crate) dup_regs: Regressor,
    pub(crate) unavail: Regressor,
    /// `(intercept, slope)` of the BRAM duplication fraction vs. the
    /// routing-LUT fraction.
    pub(crate) bram_linear: (f64, f64),
    pub(crate) regs_per_alm: f64,
}

impl AreaEstimator {
    /// Estimate the post-place-and-route area of an elaborated netlist.
    pub fn estimate_net(&self, net: &Netlist) -> AreaReport {
        let f = features(net);
        let route_frac = self.routing.predict(&f).max(0.0);
        let routing = route_frac * net.raw.luts();
        let dup_regs = self.dup_regs.predict(&f).max(0.0) * net.raw.regs;
        let unavail_frac = self.unavail.predict(&f).max(0.0);
        // Duplicated BRAMs are a linear function of the routing LUTs
        // (per unit of raw BRAM), clamped to the physically meaningful
        // range: duplication adds between 0 and 100% of the raw BRAMs
        // (§IV-A reports 10-100%).
        let bram_dup_frac = (self.bram_linear.0 + self.bram_linear.1 * route_frac).clamp(0.0, 1.0);
        let bram_dup = bram_dup_frac * net.raw.brams;
        finish_report(
            net,
            routing,
            dup_regs,
            unavail_frac,
            bram_dup,
            self.regs_per_alm,
        )
    }

    /// Estimate the area of a design on `target`.
    pub fn estimate(&self, design: &Design, target: &FpgaTarget) -> AreaReport {
        self.estimate_net(&elaborate(design, target))
    }

    /// Serialize the trained model to text.
    pub fn to_text(&self) -> String {
        format!(
            "{}==\n{}==\n{}==\nbram {} {} {}\n",
            self.routing.to_text(),
            self.dup_regs.to_text(),
            self.unavail.to_text(),
            self.bram_linear.0,
            self.bram_linear.1,
            self.regs_per_alm
        )
    }

    /// Deserialize a model from [`AreaEstimator::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed section.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut parts = text.split("==\n");
        let routing = Regressor::from_text(parts.next().ok_or("missing routing net")?)?;
        let dup_regs = Regressor::from_text(parts.next().ok_or("missing dup-regs net")?)?;
        let unavail = Regressor::from_text(parts.next().ok_or("missing unavail net")?)?;
        let tail = parts.next().ok_or("missing bram line")?;
        let nums: Vec<f64> = tail
            .trim()
            .strip_prefix("bram")
            .ok_or("bad bram line")?
            .split_whitespace()
            .map(|s| s.parse::<f64>().map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?;
        if nums.len() != 3 {
            return Err("bram line needs 3 numbers".into());
        }
        Ok(AreaEstimator {
            routing,
            dup_regs,
            unavail,
            bram_linear: (nums[0], nums[1]),
            regs_per_alm: nums[2],
        })
    }
}

/// Close an area estimate given correction terms (shared between the hybrid
/// estimator and the raw-analytical ablation). `unavail_frac` is the
/// LAB-granularity overhead as a fraction of used ALMs.
pub(crate) fn finish_report(
    net: &Netlist,
    routing_luts: f64,
    dup_regs: f64,
    unavail_frac: f64,
    bram_dup: f64,
    regs_per_alm: f64,
) -> AreaReport {
    // Routing LUTs are assumed always packable; all packable LUTs are
    // assumed packed in pairs (§IV-B2).
    let packable = net.raw.lut_packable + routing_luts;
    let alms_logic = net.raw.lut_unpackable + packable / 2.0;
    let regs_total = net.raw.regs + dup_regs;
    let alms_regs = (regs_total - regs_per_alm * alms_logic).max(0.0) / regs_per_alm;
    let alms_used = alms_logic + alms_regs;
    AreaReport {
        alms: (alms_used * (1.0 + unavail_frac.max(0.0))).round(),
        regs: regs_total.round(),
        dsps: net.raw.dsps.round(),
        brams: (net.raw.brams + bram_dup).round(),
    }
}

/// Raw analytical estimate with *no* learned correction: the ablation
/// baseline showing the value of the hybrid approach. Applies only the
/// deterministic packing closure.
pub fn raw_estimate(net: &Netlist, target: &FpgaTarget) -> AreaReport {
    finish_report(net, 0.0, 0.0, 0.0, 0.0, f64::from(target.regs_per_alm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_synth::NetFeatures;
    use dhdl_target::Resources;

    fn toy_net() -> Netlist {
        Netlist {
            breakdown: Default::default(),
            raw: Resources {
                lut_packable: 1000.0,
                lut_unpackable: 500.0,
                regs: 2000.0,
                dsps: 10.0,
                brams: 20.0,
            },
            features: NetFeatures {
                prims: 50.0,
                mems: 5.0,
                ctrls: 6.0,
                depth: 3.0,
                edges: 120.0,
                avg_width: 2.0,
            },
            pipe_depths: Vec::new(),
        }
    }

    #[test]
    fn feature_vector_has_eleven_entries() {
        assert_eq!(features(&toy_net()).len(), N_FEATURES);
    }

    #[test]
    fn raw_estimate_packs_all_packable() {
        let t = FpgaTarget::stratix_v();
        let rep = raw_estimate(&toy_net(), &t);
        // 500 unpackable + 1000/2 packed = 1000 logic ALMs; 2000 regs fit
        // exactly in 2 per ALM.
        assert_eq!(rep.alms, 1000.0);
        assert_eq!(rep.dsps, 10.0);
        assert_eq!(rep.brams, 20.0);
    }

    #[test]
    fn excess_registers_take_alms() {
        let t = FpgaTarget::stratix_v();
        let mut net = toy_net();
        net.raw.regs = 6000.0;
        let rep = raw_estimate(&net, &t);
        // 1000 logic ALMs hold 2000 regs; 4000 extra need 2000 ALMs.
        assert_eq!(rep.alms, 3000.0);
    }

    #[test]
    fn features_scale_with_design_size() {
        use dhdl_core::{by, DType, DesignBuilder};
        use dhdl_synth::elaborate;
        let build = |par: u32| {
            let mut b = DesignBuilder::new("f");
            b.sequential(|b| {
                let m = b.bram("m", DType::F32, &[64]);
                b.pipe(&[by(64, 1)], par, |b, it| {
                    let v = b.load(m, &[it[0]]);
                    let w = b.mul(v, v);
                    b.store(m, &[it[0]], w);
                });
            });
            b.finish().unwrap()
        };
        let t = FpgaTarget::stratix_v();
        let f1 = features(&elaborate(&build(1), &t));
        let f8 = features(&elaborate(&build(8), &t));
        // Raw LUTs (0), physical prims (5) and edges (9) grow with par.
        assert!(f8[0] > f1[0]);
        assert!(f8[5] > f1[5]);
        assert!(f8[9] > f1[9]);
        // Structural counts (memories, controllers, depth) are unchanged.
        assert_eq!(f8[6], f1[6]);
        assert_eq!(f8[7], f1[7]);
        assert_eq!(f8[8], f1[8]);
    }

    #[test]
    fn corrections_increase_area() {
        let t = FpgaTarget::stratix_v();
        let net = toy_net();
        let raw = raw_estimate(&net, &t);
        let corrected = finish_report(&net, 150.0, 100.0, 0.04, 5.0, 2.0);
        assert!(corrected.alms > raw.alms);
        assert!(corrected.brams > raw.brams);
        assert!(corrected.regs > raw.regs);
    }
}
