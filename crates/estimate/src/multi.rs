//! Multi-FPGA estimation: per-partition area and link-aware latency.
//!
//! The single-chip estimator answers "does this design fit, and how fast
//! is it". With partitioning the questions become per-device: every
//! partition must fit *its* device, and inter-board channels expose link
//! cycles the single-chip latency model never sees.
//!
//! The per-partition area path reuses the whole pipeline unchanged: each
//! partition's derived-design netlist goes through the same calibrated
//! area model as a whole design would, and the reported
//! [`Estimate::area`] is the **component-wise maximum** across devices —
//! so the existing `fits(&device)` check downstream *is* the
//! per-partition capacity check (the max fits iff every partition fits).
//!
//! The latency model is additive exposure: partitions execute the same
//! global controller schedule as the unpartitioned design (controllers
//! still synchronize through their parents), and each cut channel adds
//! its exposed cycles — stream occupancy serialized on the shared link
//! bandwidth, plus one first-word latency per refill for channels inside
//! sequential scopes (overlapped scopes hide all but one).

use dhdl_core::Design;
use dhdl_synth::partition::{partition, Partitioning};
use dhdl_target::{AreaReport, MultiFpgaPlatform};

use crate::{Estimate, Estimator};

/// A design estimate on a multi-FPGA platform.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedEstimate {
    /// The headline estimate: cycles include link exposure; area is the
    /// component-wise maximum across devices, so `estimate.area.fits`
    /// against one device checks every partition at once.
    pub estimate: Estimate,
    /// Post-place-and-route area of each device's partition, in device
    /// order.
    pub per_device: Vec<AreaReport>,
    /// Exposed inter-board link cycles included in `estimate.cycles`.
    pub link_cycles: f64,
    /// Devices the placer actually used (`<= k`; 1 means the design was
    /// not cut).
    pub devices_used: u32,
}

/// Component-wise maximum of per-device areas: fits one device iff every
/// input does.
fn area_max(areas: &[AreaReport]) -> AreaReport {
    let mut out = AreaReport::default();
    for a in areas {
        out.alms = out.alms.max(a.alms);
        out.regs = out.regs.max(a.regs);
        out.dsps = out.dsps.max(a.dsps);
        out.brams = out.brams.max(a.brams);
    }
    out
}

impl Estimator {
    /// The multi-FPGA platform of `k` copies of this estimator's device.
    pub fn multi_platform(&self, k: u32) -> MultiFpgaPlatform {
        MultiFpgaPlatform::from_platform(self.platform(), k)
    }

    /// Estimate a design across up to `k` devices.
    ///
    /// `k <= 1` is byte-identical to [`Estimator::estimate`] (the
    /// partitioning pass is not consulted at all). For `k > 1` the
    /// placer cuts the design (or leaves it whole if it already fits one
    /// device), each partition's netlist runs through the calibrated
    /// area model, and channel traffic adds exposed link cycles.
    pub fn estimate_partitioned(&self, design: &Design, k: u32) -> PartitionedEstimate {
        let base = self.estimate(design);
        if k <= 1 {
            return PartitionedEstimate {
                estimate: base,
                per_device: vec![base.area],
                link_cycles: 0.0,
                devices_used: 1,
            };
        }
        let _span = dhdl_obs::span_arg("estimate_partitioned", "k", u64::from(k));
        let multi = self.multi_platform(k);
        let parts = partition(design, multi.device(), &multi.link, k);
        self.estimate_with_partitioning(design, &multi, &parts, base)
    }

    /// [`Estimator::estimate_partitioned`] on an already-computed
    /// [`Partitioning`] (callers that also simulate hold one).
    pub fn estimate_with_partitioning(
        &self,
        _design: &Design,
        multi: &MultiFpgaPlatform,
        parts: &Partitioning,
        base: Estimate,
    ) -> PartitionedEstimate {
        if parts.is_single() {
            // The placer kept the design whole: identical to the
            // single-chip estimate on one of the K devices.
            return PartitionedEstimate {
                estimate: base,
                per_device: vec![base.area],
                link_cycles: 0.0,
                devices_used: 1,
            };
        }
        let per_device: Vec<AreaReport> = parts
            .partitions
            .iter()
            .map(|p| self.area_model().estimate_net(&p.net))
            .collect();
        let link_cycles = parts.link_cycles(&multi.link);
        PartitionedEstimate {
            estimate: Estimate {
                cycles: base.cycles + link_cycles,
                area: area_max(&per_device),
            },
            per_device,
            link_cycles,
            devices_used: parts.devices_used(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::{by, DType, DesignBuilder};
    use dhdl_target::Platform;

    fn estimator() -> Estimator {
        Estimator::calibrate_with(&Platform::maia(), 40, 3).0
    }

    /// A three-buffer streaming chain; `tile` scales BRAM pressure.
    fn staged(tile: u64) -> Design {
        let n = 16 * tile;
        let mut b = DesignBuilder::new("staged");
        let x = b.off_chip("x", DType::F32, &[n]);
        let y = b.off_chip("y", DType::F32, &[n]);
        b.sequential(|b| {
            b.meta_pipe(&[by(n, tile)], 1, |b, iters| {
                let i = iters[0];
                let xt = b.bram("xT", DType::F32, &[tile]);
                let mt = b.bram("mT", DType::F32, &[tile]);
                let yt = b.bram("yT", DType::F32, &[tile]);
                b.tile_load(x, xt, &[i], &[tile], 1);
                b.pipe(&[by(tile, 1)], 1, |b, it| {
                    let v = b.load(xt, &[it[0]]);
                    let w = b.mul(v, v);
                    b.store(mt, &[it[0]], w);
                });
                b.pipe(&[by(tile, 1)], 1, |b, it| {
                    let v = b.load(mt, &[it[0]]);
                    let w = b.add(v, v);
                    b.store(yt, &[it[0]], w);
                });
                b.tile_store(y, yt, &[i], &[tile], 1);
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn k1_is_byte_identical_to_single_chip() {
        let est = estimator();
        let d = staged(4096);
        let single = est.estimate(&d);
        let p = est.estimate_partitioned(&d, 1);
        assert_eq!(p.estimate, single);
        assert_eq!(p.devices_used, 1);
        assert_eq!(p.link_cycles, 0.0);
        assert_eq!(p.per_device, vec![single.area]);
    }

    #[test]
    fn fitting_design_is_not_cut_at_k2() {
        let est = estimator();
        let d = staged(4096);
        let p = est.estimate_partitioned(&d, 2);
        assert_eq!(p.devices_used, 1);
        assert_eq!(p.estimate, est.estimate(&d));
    }

    #[test]
    fn oversized_design_becomes_feasible_when_cut() {
        let est = estimator();
        let d = staged(204_800);
        let device = &est.platform().fpga;
        let single = est.estimate(&d);
        assert!(
            !single.area.fits(device),
            "test design must overflow one device"
        );
        let p = est.estimate_partitioned(&d, 2);
        assert!(p.devices_used >= 2);
        assert!(
            p.estimate.area.fits(device),
            "per-partition max must fit one device: {:?}",
            p.estimate.area
        );
        for a in &p.per_device {
            assert!(a.fits(device));
        }
        // Link traffic costs cycles: the partitioned design is slower.
        assert!(p.link_cycles > 0.0);
        assert!(p.estimate.cycles > single.cycles);
        assert!((p.estimate.cycles - single.cycles - p.link_cycles).abs() < 1e-9);
    }

    #[test]
    fn area_max_dominates_every_device() {
        let est = estimator();
        let d = staged(262_144);
        let p = est.estimate_partitioned(&d, 4);
        for a in &p.per_device {
            assert!(a.alms <= p.estimate.area.alms);
            assert!(a.dsps <= p.estimate.area.dsps);
            assert!(a.brams <= p.estimate.area.brams);
        }
    }

    #[test]
    fn partitioned_estimates_are_deterministic() {
        let est = estimator();
        let d = staged(262_144);
        assert_eq!(
            est.estimate_partitioned(&d, 4),
            est.estimate_partitioned(&d, 4)
        );
    }
}
