//! Boundedness classification of design points.
//!
//! §V-C1 analyzes every benchmark in terms of what limits it: off-chip
//! bandwidth (dotproduct, tpchq6), ALMs (blackscholes, kmeans), BRAM
//! (outerprod, gemm) or compute depth (gda). This module performs that
//! classification automatically from a design's estimates: the resource
//! closest to capacity if the design is near-full, otherwise whether the
//! estimated runtime is dominated by transfer or compute controllers.

use dhdl_core::{Design, NodeKind};
use dhdl_target::Platform;

use crate::latency::estimate_breakdown;
use crate::Estimate;

/// What limits a design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Off-chip bandwidth: transfers dominate the critical controllers.
    Memory,
    /// Compute: pipelines dominate and ALMs/DSPs are the binding resource.
    Compute,
    /// ALM capacity limits further parallelization.
    Alms,
    /// DSP capacity limits further parallelization.
    Dsps,
    /// Block RAM capacity limits tile sizes.
    Brams,
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Bottleneck::Memory => "memory-bound",
            Bottleneck::Compute => "compute-bound",
            Bottleneck::Alms => "ALM-bound",
            Bottleneck::Dsps => "DSP-bound",
            Bottleneck::Brams => "BRAM-bound",
        };
        f.write_str(s)
    }
}

/// Utilization threshold above which a resource is considered binding.
const RESOURCE_BOUND: f64 = 0.75;

/// Classify what limits a design point, given its estimate.
pub fn classify(design: &Design, estimate: &Estimate, platform: &Platform) -> Bottleneck {
    // Resource-bound if any resource is close to capacity.
    let (alm, dsp, bram) = estimate.area.utilization(&platform.fpga);
    let resources = [
        (alm, Bottleneck::Alms),
        (dsp, Bottleneck::Dsps),
        (bram, Bottleneck::Brams),
    ];
    if let Some(&(_, which)) = resources
        .iter()
        .filter(|(u, _)| *u >= RESOURCE_BOUND)
        .max_by(|a, b| a.0.total_cmp(&b.0))
    {
        return which;
    }
    // Otherwise attribute runtime: compare transfer-controller time with
    // compute-controller time among leaf controllers.
    let mut transfer = 0.0;
    let mut compute = 0.0;
    for e in estimate_breakdown(design, platform) {
        match design.kind(e.ctrl) {
            NodeKind::TileLoad(_) | NodeKind::TileStore(_) => transfer += e.total,
            NodeKind::Pipe(_) => compute += e.total,
            _ => {}
        }
    }
    if transfer >= compute {
        Bottleneck::Memory
    } else {
        Bottleneck::Compute
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Estimator;
    use dhdl_core::{by, DType, DesignBuilder};

    fn estimator() -> Estimator {
        Estimator::calibrate_with(&Platform::maia(), 30, 44).0
    }

    /// A streaming copy: almost no compute, all transfer.
    fn streaming() -> Design {
        let n = 65_536u64;
        let mut b = DesignBuilder::new("copy");
        let x = b.off_chip("x", DType::F32, &[n]);
        let y = b.off_chip("y", DType::F32, &[n]);
        b.sequential(|b| {
            b.meta_pipe(&[by(n, 4096)], 1, |b, iters| {
                let i = iters[0];
                let t = b.bram("t", DType::F32, &[4096]);
                b.tile_load(x, t, &[i], &[4096], 1);
                b.pipe(&[by(4096, 1)], 16, |b, it| {
                    let v = b.load(t, &[it[0]]);
                    let one = b.constant(1.0, DType::F32);
                    let w = b.add(v, one);
                    b.store(t, &[it[0]], w);
                });
                b.tile_store(y, t, &[i], &[4096], 1);
            });
        });
        b.finish().unwrap()
    }

    /// A deep compute kernel over a tiny dataset.
    fn computational() -> Design {
        let n = 1_024u64;
        let mut b = DesignBuilder::new("deep");
        let x = b.off_chip("x", DType::F32, &[n]);
        b.sequential(|b| {
            let t = b.bram("t", DType::F32, &[n]);
            let z = b.index_const(0);
            b.tile_load(x, t, &[z], &[n], 1);
            b.pipe(&[by(n, 1)], 1, |b, it| {
                let mut v = b.load(t, &[it[0]]);
                for _ in 0..6 {
                    v = b.sqrt(v);
                    v = b.exp(v);
                }
                b.store(t, &[it[0]], v);
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn streaming_is_memory_bound() {
        let est = estimator();
        let d = streaming();
        let e = est.estimate(&d);
        assert_eq!(classify(&d, &e, est.platform()), Bottleneck::Memory);
    }

    #[test]
    fn deep_pipelines_are_compute_bound() {
        let est = estimator();
        let d = computational();
        let e = est.estimate(&d);
        assert_eq!(classify(&d, &e, est.platform()), Bottleneck::Compute);
    }

    #[test]
    fn saturated_resources_win() {
        let est = estimator();
        let d = streaming();
        let mut e = est.estimate(&d);
        e.area.brams = est.platform().fpga.brams as f64 * 0.9;
        assert_eq!(classify(&d, &e, est.platform()), Bottleneck::Brams);
        assert_eq!(Bottleneck::Brams.to_string(), "BRAM-bound");
    }
}
