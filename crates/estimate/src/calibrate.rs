//! Estimator calibration (§IV-B2).
//!
//! "One network is trained for each factor on a common set of 200 design
//! samples with varying levels of resource usage to give a representative
//! sampling of the space." The samples are application-independent random
//! designs; each is synthesized by the toolchain model and the resulting
//! report fields (routing LUTs, duplicated registers, unavailable LUTs,
//! duplicated BRAMs) become training targets. Calibration runs once per
//! target device and toolchain.

use dhdl_core::{by, DType, Design, DesignBuilder, PrimOp, ReduceOp};
use dhdl_mlp::{Regressor, TrainConfig};
use dhdl_synth::{design_hash, elaborate, place_and_route};
use dhdl_target::FpgaTarget;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::hybrid::{features, AreaEstimator};

/// Default number of calibration samples (the paper uses 200).
pub const DEFAULT_SAMPLES: usize = 200;

/// Generate a random but structurally valid design, exercising nested
/// controllers, tile transfers, mixed primitive bodies and reductions.
pub fn random_design(seed: u64) -> Design {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
    let size: u64 = 1 << rng.gen_range(9..16); // 512 .. 32768 elements
    let n_off = rng.gen_range(1..=4usize);
    let n_blocks = rng.gen_range(1..=4usize);
    let mut b = DesignBuilder::new(format!("cal{seed}"));
    let offs: Vec<_> = (0..n_off)
        .map(|i| b.off_chip(&format!("o{i}"), DType::F32, &[size]))
        .collect();
    // Pre-draw all random choices to keep closure borrows simple.
    let blocks: Vec<BlockPlan> = (0..n_blocks)
        .map(|_| BlockPlan::draw(&mut rng, size, n_off))
        .collect();
    b.sequential(|b| {
        for (bi, plan) in blocks.iter().enumerate() {
            let offs = offs.clone();
            b.outer(
                plan.toggle,
                &[by(size, plan.tile)],
                plan.outer_par,
                |b, iters| {
                    let i = iters[0];
                    let mut bufs = Vec::new();
                    for (k, &o) in offs.iter().take(plan.n_inputs).enumerate() {
                        let t = b.bram(&format!("b{bi}_{k}"), DType::F32, &[plan.tile]);
                        b.tile_load(o, t, &[i], &[plan.tile], plan.load_par);
                        bufs.push(t);
                    }
                    let acc = b.reg(&format!("acc{bi}"), DType::F32, 0.0);
                    if plan.reduce {
                        b.pipe_reduce(
                            &[by(plan.tile, 1)],
                            plan.pipe_par,
                            acc,
                            ReduceOp::Add,
                            |b, it| random_body(b, &bufs, it[0], &plan.ops),
                        );
                    } else {
                        let out = bufs[0];
                        b.pipe(&[by(plan.tile, 1)], plan.pipe_par, |b, it| {
                            let v = random_body(b, &bufs, it[0], &plan.ops);
                            b.store(out, &[it[0]], v);
                        });
                    }
                    if plan.store_back {
                        b.tile_store(offs[0], bufs[0], &[i], &[plan.tile], plan.load_par);
                    }
                },
            );
        }
    });
    b.finish().expect("random calibration designs are valid")
}

#[derive(Debug, Clone)]
struct BlockPlan {
    tile: u64,
    toggle: bool,
    outer_par: u32,
    load_par: u32,
    pipe_par: u32,
    n_inputs: usize,
    reduce: bool,
    store_back: bool,
    ops: Vec<PrimOp>,
}

impl BlockPlan {
    fn draw(rng: &mut StdRng, size: u64, n_off: usize) -> Self {
        let tile = 1u64 << rng.gen_range(4..=12); // 16 .. 4096, divides size
        let pool = [
            PrimOp::Add,
            PrimOp::Sub,
            PrimOp::Mul,
            PrimOp::Mul,
            PrimOp::Div,
            PrimOp::Sqrt,
            PrimOp::Exp,
            PrimOp::Max,
            PrimOp::Abs,
        ];
        let n_ops = rng.gen_range(2..=14usize);
        BlockPlan {
            tile: tile.min(size),
            toggle: rng.gen_bool(0.6),
            outer_par: 1 << rng.gen_range(0..3u32),
            load_par: 1 << rng.gen_range(0..6u32),
            pipe_par: 1 << rng.gen_range(0..7u32),
            n_inputs: rng.gen_range(1..=n_off),
            reduce: rng.gen_bool(0.5),
            store_back: rng.gen_bool(0.5),
            ops: (0..n_ops)
                .map(|_| pool[rng.gen_range(0..pool.len())])
                .collect(),
        }
    }
}

fn random_body(
    b: &mut DesignBuilder,
    bufs: &[dhdl_core::NodeId],
    idx: dhdl_core::NodeId,
    ops: &[PrimOp],
) -> dhdl_core::NodeId {
    let mut v = b.load(bufs[0], &[idx]);
    let mut w = if bufs.len() > 1 {
        b.load(bufs[1], &[idx])
    } else {
        v
    };
    for &op in ops {
        v = if op.arity() == 1 {
            b.prim(op, &[v])
        } else {
            b.prim(op, &[v, w])
        };
        std::mem::swap(&mut v, &mut w);
    }
    w
}

/// Quality metrics of a calibration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationReport {
    /// Number of training samples.
    pub samples: usize,
    /// Mean relative error of the trained estimator's ALM prediction on the
    /// training set.
    pub alm_training_error: f64,
}

/// Held-out validation of the calibration methodology: train on `n`
/// samples, evaluate mean relative ALM error on `holdout` *fresh* random
/// designs from a disjoint seed stream. This is the generalization number
/// that predicts Table III performance before ever touching a benchmark.
pub fn cross_validate(target: &FpgaTarget, n: usize, holdout: usize, seed: u64) -> f64 {
    let (est, _) = calibrate(target, n, seed);
    let mut err = 0.0;
    for k in 0..holdout {
        let design = random_design(seed.wrapping_add(0xC0_0000 + k as u64));
        let net = elaborate(&design, target);
        let truth = place_and_route(design_hash(&design), &net, target);
        if truth.alms > 0.0 {
            err += ((est.estimate_net(&net).alms - truth.alms) / truth.alms).abs();
        }
    }
    err / holdout.max(1) as f64
}

/// Train the hybrid area estimator on `n` random design samples.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn calibrate(target: &FpgaTarget, n: usize, seed: u64) -> (AreaEstimator, CalibrationReport) {
    assert!(n > 0, "need at least one calibration sample");
    let mut routing_set = Vec::with_capacity(n);
    let mut dup_set = Vec::with_capacity(n);
    let mut unavail_set = Vec::with_capacity(n);
    let mut bram_pairs = Vec::with_capacity(n);
    let mut nets = Vec::with_capacity(n);
    let mut reports = Vec::with_capacity(n);
    for k in 0..n {
        let design = random_design(seed.wrapping_add(k as u64));
        let net = elaborate(&design, target);
        let report = place_and_route(design_hash(&design), &net, target);
        let f = features(&net);
        // Scale-free fractional targets (see `AreaEstimator`).
        let luts = net.raw.luts().max(1.0);
        let regs = net.raw.regs.max(1.0);
        let alms_used = (report.alms - report.luts_unavail).max(1.0);
        routing_set.push((f.clone(), report.luts_route / luts));
        dup_set.push((f.clone(), report.regs_dup / regs));
        unavail_set.push((f, report.luts_unavail / alms_used));
        if net.raw.brams >= 1.0 {
            bram_pairs.push((report.luts_route / luts, report.brams_dup / net.raw.brams));
        }
        nets.push(net);
        reports.push(report);
    }
    let cfg = TrainConfig {
        max_epochs: 800,
        target_mse: 1e-6,
        ..TrainConfig::default()
    };
    // The paper's networks: 11 inputs, 6 hidden nodes, 1 output.
    let routing = Regressor::fit(&routing_set, 6, seed ^ 0x01, &cfg);
    let dup_regs = Regressor::fit(&dup_set, 6, seed ^ 0x02, &cfg);
    let unavail = Regressor::fit(&unavail_set, 6, seed ^ 0x03, &cfg);
    let bram_linear = least_squares(&bram_pairs);
    let est = AreaEstimator {
        routing,
        dup_regs,
        unavail,
        bram_linear,
        regs_per_alm: f64::from(target.regs_per_alm),
    };
    // Training-set ALM error, as a sanity metric.
    let mut err = 0.0;
    for (net, rep) in nets.iter().zip(&reports) {
        let e = est.estimate_net(net);
        if rep.alms > 0.0 {
            err += ((e.alms - rep.alms) / rep.alms).abs();
        }
    }
    let report = CalibrationReport {
        samples: n,
        alm_training_error: err / n as f64,
    };
    (est, report)
}

/// Ordinary least-squares fit `y = a + b x`.
fn least_squares(pairs: &[(f64, f64)]) -> (f64, f64) {
    let n = pairs.len() as f64;
    if pairs.is_empty() {
        return (0.0, 0.0);
    }
    let sx: f64 = pairs.iter().map(|p| p.0).sum();
    let sy: f64 = pairs.iter().map(|p| p.1).sum();
    let sxx: f64 = pairs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pairs.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (sy / n, 0.0);
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_designs_are_valid_and_varied() {
        let a = random_design(1);
        let b = random_design(2);
        assert_ne!(design_hash(&a), design_hash(&b));
        assert!(a.len() > 5);
        // Determinism.
        assert_eq!(design_hash(&a), design_hash(&random_design(1)));
    }

    #[test]
    fn least_squares_recovers_line() {
        let pairs: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let (a, b) = least_squares(&pairs);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        assert_eq!(least_squares(&[]), (0.0, 0.0));
        let (a, b) = least_squares(&[(5.0, 7.0), (5.0, 9.0)]);
        assert_eq!(b, 0.0);
        assert_eq!(a, 8.0);
    }

    #[test]
    fn cross_validation_generalizes() {
        let target = FpgaTarget::stratix_v();
        let cv = cross_validate(&target, 80, 25, 13);
        assert!(cv < 0.12, "held-out ALM error {cv}");
    }

    #[test]
    fn calibration_beats_raw_on_training_set() {
        let target = FpgaTarget::stratix_v();
        let (est, report) = calibrate(&target, 60, 7);
        assert!(report.alm_training_error < 0.15, "{report:?}");
        // The hybrid estimator must be closer to synthesis than the raw
        // packing-only estimate on a held-out design.
        let d = random_design(10_001);
        let net = elaborate(&d, &target);
        let truth = place_and_route(design_hash(&d), &net, &target).area_report();
        let hybrid = est.estimate_net(&net);
        let raw = crate::hybrid::raw_estimate(&net, &target);
        let err = |x: f64| ((x - truth.alms) / truth.alms).abs();
        assert!(
            err(hybrid.alms) <= err(raw.alms) + 0.02,
            "hybrid {} raw {} truth {}",
            hybrid.alms,
            raw.alms,
            truth.alms
        );
    }
}
