//! # dhdl-estimate — fast area and cycle-count estimation
//!
//! The paper's core contribution (§IV): millisecond-scale estimates of
//! FPGA resource usage and execution cycles for DHDL design instances,
//! accurate enough to drive design space exploration.
//!
//! * [`estimate_cycles`] — recursive latency analysis with the MetaPipe
//!   pipelining formula `(N−1)·max(stages) + Σ stages`, critical-path
//!   search in pipe bodies, and a contention-aware off-chip memory model;
//! * [`AreaEstimator`] — hybrid analytical + neural-network area model
//!   (§IV-B2): characterized template counts, ML-predicted routing LUTs,
//!   register duplication and unavailable LUTs, a linear model for BRAM
//!   duplication, and a LUT-packing closure;
//! * [`calibrate`] — one-time training against the synthesis model on
//!   random design samples (application-independent).
//!
//! [`Estimator::estimate`] elaborates a design exactly once and feeds
//! the one netlist to both the latency and area paths; the `_net` entry
//! points ([`Estimator::estimate_net`], [`Estimator::raw_area_net`])
//! accept a pre-built netlist for callers — the DSE hot path — that
//! already hold one.
//!
//! ```no_run
//! use dhdl_estimate::Estimator;
//! use dhdl_target::Platform;
//!
//! let platform = Platform::maia();
//! let estimator = Estimator::calibrate(&platform, 42);
//! # let design: dhdl_core::Design = unimplemented!();
//! let e = estimator.estimate(&design);
//! println!("{} cycles, {} ALMs", e.cycles, e.area.alms);
//! ```

#![warn(missing_docs)]

mod bottleneck;
mod calibrate;
mod hybrid;
mod latency;
mod multi;

pub use bottleneck::{classify, Bottleneck};
pub use calibrate::{calibrate, cross_validate, random_design, CalibrationReport, DEFAULT_SAMPLES};
pub use hybrid::{features, raw_estimate, AreaEstimator, N_FEATURES};
pub use latency::{estimate_breakdown, estimate_cycles, estimate_cycles_net, LatencyEntry};
pub use multi::PartitionedEstimate;

use dhdl_core::Design;
use dhdl_synth::{elaborate, Netlist};
use dhdl_target::{AreaReport, Platform};

/// A complete design estimate: cycles and post-place-and-route area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated execution cycles at the fabric clock.
    pub cycles: f64,
    /// Estimated area in device units.
    pub area: AreaReport,
}

impl Estimate {
    /// Estimated wall-clock runtime on `platform`.
    pub fn seconds(&self, platform: &Platform) -> f64 {
        platform.cycles_to_seconds(self.cycles)
    }

    /// Estimated power draw on `platform` in watts.
    pub fn watts(&self, platform: &Platform) -> f64 {
        platform
            .power
            .watts(&self.area, platform.fpga.fabric_clock_hz)
    }

    /// Estimated energy for one execution on `platform`, in joules.
    pub fn joules(&self, platform: &Platform) -> f64 {
        platform.power.joules(
            &self.area,
            platform.fpga.fabric_clock_hz,
            self.seconds(platform),
        )
    }
}

/// The calibrated estimator: platform model plus trained area networks.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimator {
    platform: Platform,
    area: AreaEstimator,
}

impl Estimator {
    /// Calibrate an estimator for `platform` with the paper's default of
    /// 200 synthesis samples.
    pub fn calibrate(platform: &Platform, seed: u64) -> Self {
        Self::calibrate_with(platform, DEFAULT_SAMPLES, seed).0
    }

    /// Calibrate with an explicit sample count, returning quality metrics.
    pub fn calibrate_with(
        platform: &Platform,
        samples: usize,
        seed: u64,
    ) -> (Self, CalibrationReport) {
        let _span = dhdl_obs::span!("calibrate", samples);
        let (area, report) = calibrate(&platform.fpga, samples, seed);
        (
            Estimator {
                platform: platform.clone(),
                area,
            },
            report,
        )
    }

    /// Build an estimator from a pre-trained area model.
    pub fn from_model(platform: &Platform, area: AreaEstimator) -> Self {
        Estimator {
            platform: platform.clone(),
            area,
        }
    }

    /// The platform this estimator targets.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The trained area model.
    pub fn area_model(&self) -> &AreaEstimator {
        &self.area
    }

    /// Elaborate a design against this estimator's target — the netlist
    /// both estimate paths consume. Callers that need several views of
    /// one design (estimate + raw area + place-and-route) should
    /// elaborate once and use the `_net` entry points.
    pub fn elaborate(&self, design: &Design) -> Netlist {
        elaborate(design, &self.platform.fpga)
    }

    /// Estimate cycles and area for a design instance.
    ///
    /// The design is elaborated exactly once; the same netlist feeds the
    /// latency path (recorded pipe depths) and the area path.
    pub fn estimate(&self, design: &Design) -> Estimate {
        let net = self.elaborate(design);
        self.estimate_net(design, &net)
    }

    /// [`Estimator::estimate`] on an already-elaborated netlist of the
    /// same design. No further elaboration happens.
    pub fn estimate_net(&self, design: &Design, net: &Netlist) -> Estimate {
        let _span = dhdl_obs::span!("estimate_net");
        let cycles = {
            let _t = dhdl_obs::histogram!("estimate.latency_ns").timer();
            estimate_cycles_net(design, &self.platform, net)
        };
        let area = {
            let _t = dhdl_obs::histogram!("estimate.area_ns").timer();
            self.area.estimate_net(net)
        };
        Estimate { cycles, area }
    }

    /// Estimate only the area of a design instance.
    pub fn area(&self, design: &Design) -> AreaReport {
        self.area.estimate(design, &self.platform.fpga)
    }

    /// Estimate only the cycle count of a design instance.
    pub fn cycles(&self, design: &Design) -> f64 {
        estimate_cycles(design, &self.platform)
    }

    /// Raw analytical area estimate without the learned correction (the
    /// ablation baseline of DESIGN.md).
    pub fn raw_area(&self, design: &Design) -> AreaReport {
        self.raw_area_net(&self.elaborate(design))
    }

    /// [`Estimator::raw_area`] on an already-elaborated netlist.
    pub fn raw_area_net(&self, net: &Netlist) -> AreaReport {
        raw_estimate(net, &self.platform.fpga)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::{by, DType, DesignBuilder, ReduceOp};

    fn small_design() -> Design {
        let mut b = DesignBuilder::new("e2e");
        let x = b.off_chip("x", DType::F32, &[512]);
        b.sequential(|b| {
            let acc = b.reg("acc", DType::F32, 0.0);
            b.meta_pipe(&[by(512, 64)], 1, |b, iters| {
                let i = iters[0];
                let t = b.bram("t", DType::F32, &[64]);
                b.tile_load(x, t, &[i], &[64], 2);
                b.pipe_reduce(&[by(64, 1)], 2, acc, ReduceOp::Add, |b, it| {
                    let v = b.load(t, &[it[0]]);
                    b.mul(v, v)
                });
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn end_to_end_estimate() {
        let platform = Platform::maia();
        let (est, _) = Estimator::calibrate_with(&platform, 40, 3);
        let e = est.estimate(&small_design());
        assert!(e.cycles > 0.0);
        assert!(e.area.alms > 0.0);
        assert!(e.seconds(&platform) > 0.0);
        // Raw estimate differs from the corrected one.
        let raw = est.raw_area(&small_design());
        assert_ne!(raw.alms, e.area.alms);
    }

    #[test]
    fn shared_netlist_paths_match_per_call_paths() {
        let platform = Platform::maia();
        let (est, _) = Estimator::calibrate_with(&platform, 30, 7);
        let d = small_design();
        let net = est.elaborate(&d);
        // One elaboration feeding both paths gives exactly the per-call
        // results (the cache relies on this equivalence being bit-exact).
        assert_eq!(est.estimate_net(&d, &net), est.estimate(&d));
        assert_eq!(est.estimate(&d).area, est.area(&d));
        assert_eq!(est.estimate(&d).cycles, est.cycles(&d));
        assert_eq!(est.raw_area_net(&net), est.raw_area(&d));
    }

    #[test]
    fn model_roundtrip_through_text() {
        let platform = Platform::maia();
        let (est, _) = Estimator::calibrate_with(&platform, 30, 5);
        let text = est.area_model().to_text();
        let model = AreaEstimator::from_text(&text).unwrap();
        let est2 = Estimator::from_model(&platform, model);
        let d = small_design();
        assert_eq!(est.area(&d), est2.area(&d));
    }
}
