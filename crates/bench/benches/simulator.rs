//! Simulator throughput (the execution substrate's cost per benchmark run).
//!
//! Two groups: `simulate` measures the reference interpreter, `sim_tape`
//! measures the tape-compiled backend with compilation amortized (compile
//! once, run per iteration — the DSE/fuzzing usage pattern). The gap
//! between the groups is the compiled backend's speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use dhdl_apps::{Benchmark, DotProduct, Gda};
use dhdl_sim::{compile, simulate, Bindings};
use dhdl_target::Platform;

fn bindings_for(bench: &dyn Benchmark) -> Bindings {
    let mut b = Bindings::new();
    for (name, data) in bench.inputs() {
        b = b.bind(&name, data);
    }
    b
}

fn bench_sim(c: &mut Criterion) {
    let platform = Platform::maia();
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);

    let dot = DotProduct::new(9_600);
    let dot_design = dot.build(&dot.default_params()).unwrap();
    let dot_bind = bindings_for(&dot);
    group.bench_function("dotproduct_9600", |b| {
        b.iter(|| std::hint::black_box(simulate(&dot_design, &platform, &dot_bind).unwrap()))
    });

    let gda = Gda::new(384, 16);
    let gda_design = gda.build(&gda.default_params()).unwrap();
    let gda_bind = bindings_for(&gda);
    group.bench_function("gda_384x16", |b| {
        b.iter(|| std::hint::black_box(simulate(&gda_design, &platform, &gda_bind).unwrap()))
    });
    group.finish();
}

fn bench_tape(c: &mut Criterion) {
    let platform = Platform::maia();
    let mut group = c.benchmark_group("sim_tape");
    group.sample_size(20);

    let dot = DotProduct::new(9_600);
    let dot_design = dot.build(&dot.default_params()).unwrap();
    let dot_bind = bindings_for(&dot);
    let dot_compiled = compile(&dot_design, &platform).expect("dotproduct compiles");
    group.bench_function("dotproduct_9600", |b| {
        b.iter(|| std::hint::black_box(dot_compiled.run(&dot_bind).unwrap()))
    });

    let gda = Gda::new(384, 16);
    let gda_design = gda.build(&gda.default_params()).unwrap();
    let gda_bind = bindings_for(&gda);
    let gda_compiled = compile(&gda_design, &platform).expect("gda compiles");
    group.bench_function("gda_384x16", |b| {
        b.iter(|| std::hint::black_box(gda_compiled.run(&gda_bind).unwrap()))
    });

    // Cold path: compile + single run, the one-shot CLI usage pattern.
    group.bench_function("dotproduct_9600_cold", |b| {
        b.iter(|| {
            let compiled = compile(&dot_design, &platform).unwrap();
            std::hint::black_box(compiled.run(&dot_bind).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim, bench_tape);
criterion_main!(benches);
