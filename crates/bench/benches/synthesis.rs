//! Synthesis-model and code-generation performance.

use criterion::{criterion_group, criterion_main, Criterion};
use dhdl_apps::{Benchmark, Gda};
use dhdl_synth::{elaborate, maxj, synthesize};
use dhdl_target::FpgaTarget;

fn bench_synth(c: &mut Criterion) {
    let target = FpgaTarget::stratix_v();
    let gda = Gda::default();
    let design = gda.build(&gda.default_params()).unwrap();
    c.bench_function("elaborate_gda", |b| {
        b.iter(|| std::hint::black_box(elaborate(&design, &target)))
    });
    c.bench_function("synthesize_gda", |b| {
        b.iter(|| std::hint::black_box(synthesize(&design, &target)))
    });
    c.bench_function("maxj_codegen_gda", |b| {
        b.iter(|| std::hint::black_box(maxj::generate(&design)))
    });
}

criterion_group!(benches, bench_synth);
criterion_main!(benches);
