//! Design-space exploration throughput (points evaluated per second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dhdl_apps::{Benchmark, DotProduct};
use dhdl_dse::{explore, DseOptions};
use dhdl_estimate::Estimator;
use dhdl_target::Platform;

fn bench_dse(c: &mut Criterion) {
    let platform = Platform::maia();
    let (estimator, _) = Estimator::calibrate_with(&platform, 60, 9);
    let bench = DotProduct::default();
    let space = bench.param_space();
    let mut group = c.benchmark_group("dse_explore");
    group.sample_size(10);
    for points in [25usize, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(points), &points, |b, &n| {
            let opts = DseOptions {
                max_points: n,
                ..DseOptions::default()
            };
            b.iter(|| std::hint::black_box(explore(|p| bench.build(p), &space, &estimator, &opts)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);
