//! Estimator throughput: the headline claim of Table IV is that a full
//! cycle+area estimate takes milliseconds per design.

use criterion::{criterion_group, criterion_main, Criterion};
use dhdl_apps::{Benchmark, Gda};
use dhdl_estimate::Estimator;
use dhdl_target::Platform;

fn bench_estimator(c: &mut Criterion) {
    let platform = Platform::maia();
    let (estimator, _) = Estimator::calibrate_with(&platform, 60, 7);
    let gda = Gda::default();
    let design = gda.build(&gda.default_params()).unwrap();

    c.bench_function("estimate_full_gda", |b| {
        b.iter(|| std::hint::black_box(estimator.estimate(&design)))
    });
    c.bench_function("estimate_cycles_gda", |b| {
        b.iter(|| std::hint::black_box(estimator.cycles(&design)))
    });
    c.bench_function("estimate_area_gda", |b| {
        b.iter(|| std::hint::black_box(estimator.area(&design)))
    });
    c.bench_function("instantiate_plus_estimate_gda", |b| {
        b.iter(|| {
            let d = gda.build(&gda.default_params()).unwrap();
            std::hint::black_box(estimator.estimate(&d))
        })
    });
}

criterion_group!(benches, bench_estimator);
criterion_main!(benches);
