//! Estimator throughput: the headline claim of Table IV is that a full
//! cycle+area estimate takes milliseconds per design. The memoized
//! pipeline adds three more rungs to the ladder: elaborate-once shared
//! between latency and area, the canonical structural hash that keys the
//! estimate cache, and a cache hit that skips estimation entirely.

use criterion::{criterion_group, criterion_main, Criterion};
use dhdl_apps::{Benchmark, Gda};
use dhdl_core::structural_hash;
use dhdl_dse::{model_fingerprint, CachedModel, CostModel, EstimateCache};
use dhdl_estimate::Estimator;
use dhdl_target::Platform;

fn bench_estimator(c: &mut Criterion) {
    let platform = Platform::maia();
    let (estimator, _) = Estimator::calibrate_with(&platform, 60, 7);
    let gda = Gda::default();
    let design = gda.build(&gda.default_params()).unwrap();

    c.bench_function("estimate_full_gda", |b| {
        b.iter(|| std::hint::black_box(estimator.estimate(&design)))
    });
    c.bench_function("estimate_cycles_gda", |b| {
        b.iter(|| std::hint::black_box(estimator.cycles(&design)))
    });
    c.bench_function("estimate_area_gda", |b| {
        b.iter(|| std::hint::black_box(estimator.area(&design)))
    });
    // The elaborate-once split: elaboration alone, then both estimate
    // paths fed from one pre-built netlist (the DSE hot path).
    c.bench_function("elaborate_only_gda", |b| {
        b.iter(|| std::hint::black_box(estimator.elaborate(&design)))
    });
    let net = estimator.elaborate(&design);
    c.bench_function("estimate_net_gda", |b| {
        b.iter(|| std::hint::black_box(estimator.estimate_net(&design, &net)))
    });
    c.bench_function("structural_hash_gda", |b| {
        b.iter(|| std::hint::black_box(structural_hash(&design)))
    });
    // A cache hit: hash + sharded map lookup, no elaboration at all.
    let cache = EstimateCache::new(model_fingerprint(&estimator));
    let cached = CachedModel::new(&estimator, &cache);
    cached.estimate(&design); // warm the single entry
    c.bench_function("estimate_cache_hit_gda", |b| {
        b.iter(|| std::hint::black_box(cached.estimate(&design)))
    });
    c.bench_function("instantiate_plus_estimate_gda", |b| {
        b.iter(|| {
            let d = gda.build(&gda.default_params()).unwrap();
            std::hint::black_box(estimator.estimate(&d))
        })
    });
}

criterion_group!(benches, bench_estimator);
criterion_main!(benches);
