//! Host CPU baseline kernel performance.

use criterion::{criterion_group, criterion_main, Criterion};
use dhdl_apps::{BlackScholes, DotProduct, Gemm};

fn bench_cpu(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_kernels");
    group.sample_size(10);
    let dot = DotProduct::new(96_000);
    group.bench_function("dotproduct_96k", |b| {
        b.iter(|| std::hint::black_box(dhdl_cpu::run(&dot, 1)))
    });
    let gemm = Gemm::new(96, 96, 96);
    group.bench_function("gemm_96", |b| {
        b.iter(|| std::hint::black_box(dhdl_cpu::run(&gemm, 1)))
    });
    let bs = BlackScholes::new(9_600);
    group.bench_function("blackscholes_9600", |b| {
        b.iter(|| std::hint::black_box(dhdl_cpu::run(&bs, 1)))
    });
    group.finish();
}

criterion_group!(benches, bench_cpu);
criterion_main!(benches);
