//! Neural-network library performance: forward pass and RPROP training.

use criterion::{criterion_group, criterion_main, Criterion};
use dhdl_mlp::{train_rprop, Activation, Dataset, Mlp, TrainConfig};

fn bench_mlp(c: &mut Criterion) {
    // The paper's network shape: 11 inputs, 6 hidden, 1 output.
    let net = Mlp::new(&[11, 6, 1], Activation::Sigmoid, 3);
    let x = [0.3f64; 11];
    c.bench_function("mlp_forward_11_6_1", |b| {
        b.iter(|| std::hint::black_box(net.forward(&x)))
    });

    let mut data = Dataset::new();
    for i in 0..200 {
        let v = i as f64 / 200.0;
        data.push(&[v; 11], &[v * v]);
    }
    let mut group = c.benchmark_group("mlp_train");
    group.sample_size(10);
    group.bench_function("rprop_200x100epochs", |b| {
        b.iter(|| {
            let mut n = Mlp::new(&[11, 6, 1], Activation::Sigmoid, 3);
            let cfg = TrainConfig {
                max_epochs: 100,
                target_mse: 0.0,
                ..TrainConfig::default()
            };
            std::hint::black_box(train_rprop(&mut n, &data, &cfg))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mlp);
criterion_main!(benches);
