//! Observation overhead: the dhdl-obs acceptance criterion is that the
//! disabled instrumentation costs under 2% on the estimate-net hot path
//! (one relaxed atomic load and a branch per primitive). This bench
//! measures that path with recording off and with full recording on,
//! plus the raw cost of the disabled primitives themselves.
//!
//! Compare `estimate_net/obs_off` against `estimate_net/obs_on`; the
//! `obs_off` number is the one sweeps pay by default.

use criterion::{criterion_group, criterion_main, Criterion};
use dhdl_apps::{Benchmark, Gda};
use dhdl_estimate::Estimator;
use dhdl_target::Platform;

fn bench_obs_overhead(c: &mut Criterion) {
    let platform = Platform::maia();
    let (estimator, _) = Estimator::calibrate_with(&platform, 60, 7);
    let gda = Gda::default();
    let design = gda.build(&gda.default_params()).unwrap();
    let net = estimator.elaborate(&design);

    // The hot path with observation off (the default): every span,
    // counter and histogram inside degenerates to a load + branch.
    dhdl_obs::init(dhdl_obs::Mode::Off);
    c.bench_function("estimate_net/obs_off", |b| {
        b.iter(|| std::hint::black_box(estimator.estimate_net(&design, &net)))
    });

    // The same path with full recording: spans read the clock twice and
    // push events, histograms bucket latencies. This is the cost a user
    // opts into with DHDL_OBS=chrome.
    dhdl_obs::init(dhdl_obs::Mode::Chrome);
    c.bench_function("estimate_net/obs_on", |b| {
        b.iter(|| std::hint::black_box(estimator.estimate_net(&design, &net)))
    });
    dhdl_obs::init(dhdl_obs::Mode::Off);

    // Raw primitive costs while disabled, for the overhead arithmetic:
    // estimate_net executes a handful of these per call.
    c.bench_function("disabled_span", |b| {
        b.iter(|| std::hint::black_box(dhdl_obs::span!("bench.noop")))
    });
    c.bench_function("disabled_counter", |b| {
        b.iter(|| dhdl_obs::counter!("bench.noop").incr())
    });
    c.bench_function("disabled_histogram_timer", |b| {
        b.iter(|| std::hint::black_box(dhdl_obs::histogram!("bench.noop_ns").timer()))
    });
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
