//! Golden regression for the DNN workload frontier (conv2d + attention).
//!
//! The full-scale run is the `dnnbench` binary; this test pins the same
//! computations at a reduced configuration so every `cargo test`
//! invocation guards the frontier against drift:
//!
//! - the CPU reference kernels' outputs, pinned as FNV checksums over
//!   the exact IEEE-754 bits (the simulator, the `dhdl-cpu` kernels and
//!   the conformance references are all bit-exact against these),
//! - estimator finiteness and monotonicity in parallelism,
//! - seed-stable DSE Pareto fronts under both search strategies,
//! - Table-III-style model errors within a golden band (the precise
//!   errors are *reported* by `dnnbench` into EXPERIMENTS.md, not gated;
//!   the band here only catches order-of-magnitude regressions).

use dhdl_apps::{Attention, Benchmark, Conv2d};
use dhdl_bench::Harness;
use dhdl_core::Fnv64;
use dhdl_dse::{SearchStrategy, SurrogateConfig};

/// DSE sample budget (the full run uses more).
const DSE_POINTS: usize = 60;
/// Pareto picks per benchmark.
const PARETO_N: usize = 3;
/// Harness seed — must match the `dnnbench` binary.
const SEED: u64 = 0xD4D2;

/// FNV-64 over the reference `out` bits for `Conv2d::new(18, 4)`.
const CONV_CHECKSUM: u64 = 0x307598b39777bfff;
/// FNV-64 over the reference `out` bits for `Attention::new(16)`.
const ATTN_CHECKSUM: u64 = 0xea0d99ebdcb9c7ff;

/// Measured `(alm, dsp, bram, runtime)` average errors at this config.
const GOLDEN: [f64; 4] = [0.0318, 0.0632, 0.0708, 0.1276];
/// Absolute tolerance per axis (wider than table3: these workloads sit
/// outside the calibration set by design).
const TOL: f64 = 0.06;
/// Hard ceiling per axis.
const CEILING: [f64; 4] = [0.30, 0.30, 0.35, 0.35];

fn benches() -> Vec<Box<dyn Benchmark>> {
    vec![Box::new(Conv2d::new(18, 4)), Box::new(Attention::new(16))]
}

fn checksum(arrays: &dhdl_apps::Arrays) -> u64 {
    let mut h = Fnv64::new();
    for (name, data) in arrays {
        h.write(name.as_bytes());
        for v in data {
            h.write_u64(v.to_bits());
        }
    }
    h.finish()
}

#[test]
fn reference_checksums_are_pinned() {
    let golden = [CONV_CHECKSUM, ATTN_CHECKSUM];
    for (bench, want) in benches().iter().zip(golden) {
        let reference = bench.reference();
        let got = checksum(&reference);
        assert_eq!(
            got,
            want,
            "{}: reference checksum {got:#018x} != golden {want:#018x}",
            bench.name()
        );
        // The optimized CPU kernel reproduces the reference bit-for-bit
        // at any thread count (row partitioning is order-preserving).
        for threads in [1, 4] {
            let cpu = dhdl_cpu::run(bench.as_ref(), threads);
            assert_eq!(
                checksum(&cpu.outputs),
                want,
                "{}: CPU kernel ({threads} threads) diverged from reference",
                bench.name()
            );
        }
    }
}

#[test]
fn estimates_are_finite_and_monotone_in_par() {
    let h = Harness::new(SEED, DSE_POINTS);
    for bench in benches() {
        let space = bench.param_space();
        let defaults = bench.default_params();
        assert!(space.is_legal(&defaults), "{}", bench.name());
        let design = bench.build(&defaults).unwrap();
        let est = h.estimator.estimate(&design);
        assert!(
            est.cycles.is_finite() && est.cycles > 0.0,
            "{}: cycles {}",
            bench.name(),
            est.cycles
        );
        for a in [est.area.alms, est.area.regs, est.area.dsps, est.area.brams] {
            assert!(a.is_finite() && a >= 0.0, "{}: area {a}", bench.name());
        }
        // Widening the lane parallelism can only add raw datapath area
        // and can only help modeled runtime.
        let (par_name, wide_par) = match bench.name() {
            "conv2d" => ("pj", 4u64),
            _ => ("pa", 4u64),
        };
        let narrow = design;
        let wide = bench
            .build(&defaults.clone().with(par_name, wide_par))
            .unwrap();
        let (na, wa) = (h.estimator.raw_area(&narrow), h.estimator.raw_area(&wide));
        assert!(
            wa.alms + 1.0 + na.alms * 0.01 >= na.alms,
            "{}: par={wide_par} raw alms {} below serial {}",
            bench.name(),
            wa.alms,
            na.alms
        );
        let (nc, wc) = (h.estimator.cycles(&narrow), h.estimator.cycles(&wide));
        assert!(
            wc <= nc * 1.05 + 16.0,
            "{}: par={wide_par} modeled {wc:.0} cycles, slower than {nc:.0}",
            bench.name()
        );
    }
}

fn front_hash(h: &Harness, bench: &dyn Benchmark) -> u64 {
    let result = h.explore(bench);
    assert!(!result.pareto.is_empty(), "{}: empty front", bench.name());
    let mut hash = Fnv64::new();
    let mut fronts: Vec<String> = result
        .pareto
        .iter()
        .map(|&i| result.points[i].params.to_string())
        .collect();
    fronts.sort();
    for f in &fronts {
        hash.write(f.as_bytes());
    }
    hash.finish()
}

#[test]
fn dse_fronts_are_seed_stable_under_both_strategies() {
    for strategy in [
        SearchStrategy::Random,
        SearchStrategy::Surrogate(SurrogateConfig::default()),
    ] {
        let mut h = Harness::new(SEED, DSE_POINTS);
        h.dse.strategy = strategy.clone();
        for bench in benches() {
            let a = front_hash(&h, bench.as_ref());
            let b = front_hash(&h, bench.as_ref());
            assert_eq!(
                a,
                b,
                "{} ({strategy:?}): re-running DSE changed the Pareto front",
                bench.name()
            );
        }
    }
}

#[test]
fn dnn_model_errors_match_golden_band() {
    let harness = Harness::new(SEED, DSE_POINTS);
    let benches = benches();
    let mut sums = [0.0f64; 4];
    for bench in &benches {
        let dse = harness.explore(bench.as_ref());
        let picks = harness.pareto_sample(&dse, PARETO_N);
        assert!(
            !picks.is_empty(),
            "{}: DSE produced no Pareto points",
            bench.name()
        );
        let mut errs = [0.0f64; 4];
        for p in &picks {
            let eval = harness.evaluate(bench.as_ref(), p);
            let (a, d, b, r) = eval.errors();
            errs[0] += a;
            errs[1] += d;
            errs[2] += b;
            errs[3] += r;
        }
        let n = picks.len() as f64;
        for (s, e) in sums.iter_mut().zip(errs) {
            *s += e / n;
        }
    }
    let n = benches.len() as f64;
    eprintln!(
        "measured dnn errors: [{:.4}, {:.4}, {:.4}, {:.4}]",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n
    );
    let axes = ["ALM", "DSP", "BRAM", "runtime"];
    for i in 0..4 {
        let avg = sums[i] / n;
        assert!(
            (avg - GOLDEN[i]).abs() <= TOL,
            "{} average error {avg:.4} drifted from golden {:.4} (tol {TOL})",
            axes[i],
            GOLDEN[i]
        );
        assert!(
            avg <= CEILING[i],
            "{} average error {avg:.4} exceeds hard ceiling {}",
            axes[i],
            CEILING[i]
        );
    }
}
