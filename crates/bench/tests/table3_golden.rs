//! Golden regression for the Table III model-error computation.
//!
//! The full-scale run (`cargo run -p dhdl-bench --bin table3`, 1000 DSE
//! points per benchmark, release) reproduces average absolute model
//! errors of **2.7% ALM / 1.4% DSP / 6.1% BRAM / 5.5% runtime** against
//! the paper's 4.8/7.5/12.3/6.1%. That run is CI's release-only job;
//! this test pins the *same computation* at a reduced configuration
//! (60 DSE points, 3 Pareto picks, functional-suite dataset sizes) so
//! every `cargo test` invocation guards the estimator against drift.
//!
//! The golden values below were measured at this exact configuration
//! with the deterministic harness seed the table3 binary uses; the
//! absolute tolerance absorbs benign cross-platform float noise while
//! still catching any real model regression (which moves these averages
//! by tens of percentage points, not fractions of one).

use dhdl_apps::{Benchmark, BlackScholes, DotProduct, Gda, Gemm, KMeans, OuterProduct, TpchQ6};
use dhdl_bench::Harness;

/// DSE sample budget (the full run uses 1000).
const DSE_POINTS: usize = 60;
/// Pareto picks per benchmark (the full run uses 5, §V-B).
const PARETO_N: usize = 3;
/// Harness seed — must match the `table3` binary.
const SEED: u64 = 0xD4D1;

/// Measured `(alm, dsp, bram, runtime)` average errors at this config.
const GOLDEN: [f64; 4] = [0.0350, 0.0408, 0.0723, 0.0687];
/// Absolute tolerance per axis.
const TOL: f64 = 0.025;
/// Hard ceiling per axis: even if the golden band is ever re-baselined,
/// the model must stay within striking distance of the paper's quality.
const CEILING: [f64; 4] = [0.10, 0.10, 0.14, 0.14];

fn benches() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(DotProduct::new(1_920)),
        Box::new(OuterProduct::new(128)),
        Box::new(Gemm::new(32, 24, 16)),
        Box::new(TpchQ6::new(1_920)),
        Box::new(BlackScholes::new(192)),
        Box::new(Gda::new(96, 8)),
        Box::new(KMeans::new(192, 4, 8)),
    ]
}

#[test]
fn table3_errors_match_golden_values() {
    let harness = Harness::new(SEED, DSE_POINTS);
    let benches = benches();
    let mut sums = [0.0f64; 4];
    for bench in &benches {
        let dse = harness.explore(bench.as_ref());
        let picks = harness.pareto_sample(&dse, PARETO_N);
        assert!(
            !picks.is_empty(),
            "{}: DSE produced no Pareto points",
            bench.name()
        );
        let mut errs = [0.0f64; 4];
        for p in &picks {
            let eval = harness.evaluate(bench.as_ref(), p);
            let (a, d, b, r) = eval.errors();
            errs[0] += a;
            errs[1] += d;
            errs[2] += b;
            errs[3] += r;
        }
        let n = picks.len() as f64;
        for (s, e) in sums.iter_mut().zip(errs) {
            *s += e / n;
        }
    }
    let n = benches.len() as f64;
    let axes = ["ALM", "DSP", "BRAM", "runtime"];
    for i in 0..4 {
        let avg = sums[i] / n;
        assert!(
            (avg - GOLDEN[i]).abs() <= TOL,
            "{} average error {avg:.4} drifted from golden {:.4} (tol {TOL})",
            axes[i],
            GOLDEN[i]
        );
        assert!(
            avg <= CEILING[i],
            "{} average error {avg:.4} exceeds hard ceiling {}",
            axes[i],
            CEILING[i]
        );
    }
}
