//! Output formatting: aligned text tables, CSV files and ASCII scatter
//! plots for the figure data.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}", w = *w);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// The results directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("DHDL_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    let _ = fs::create_dir_all(&path);
    path
}

/// Write a string to `results/<name>`, returning the path.
pub fn write_result(name: &str, contents: &str) -> PathBuf {
    let path = results_dir().join(name);
    if let Err(e) = fs::write(&path, contents) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    path
}

/// Render an ASCII scatter plot of `(x, y, class)` points, where class 0
/// is drawn as `·` (invalid), 1 as `o` (valid) and 2 as `#` (Pareto).
/// `x` is expected in `[0, 1]` (utilization); `y` is plotted in log10.
pub fn ascii_scatter(points: &[(f64, f64, u8)], width: usize, height: usize) -> String {
    if points.is_empty() {
        return "(no points)\n".to_string();
    }
    let ys: Vec<f64> = points.iter().map(|p| p.1.max(1.0).log10()).collect();
    let ymin = ys.iter().cloned().fold(f64::INFINITY, f64::min);
    let ymax = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let yspan = (ymax - ymin).max(1e-9);
    let mut grid = vec![vec![b' '; width]; height];
    for (p, y) in points.iter().zip(&ys) {
        let xi = ((p.0.clamp(0.0, 1.2) / 1.2) * (width - 1) as f64).round() as usize;
        let yi = (((ymax - y) / yspan) * (height - 1) as f64).round() as usize;
        let ch = match p.2 {
            0 => b'.',
            1 => b'o',
            _ => b'#',
        };
        let cell = &mut grid[yi.min(height - 1)][xi.min(width - 1)];
        // Pareto marks win over valid, valid over invalid.
        if ch > *cell || *cell == b' ' {
            *cell = ch;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "log10(cycles) {ymax:.1} .. {ymin:.1} (top to bottom)");
    for row in grid {
        out.push('|');
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let _ = writeln!(out, " utilization 0%..120%   . invalid  o valid  # pareto");
    out
}

/// Format a ratio as `N.NNx`.
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

/// Format a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "22222".into()]);
        let s = t.render();
        assert!(s.contains("alpha"));
        assert!(s.lines().count() >= 4);
        let csv = t.to_csv();
        assert!(csv.starts_with("name,value\n"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        Table::new(&["a"]).row(&["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(&["a,b"]);
        t.row(&["x\"y".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    fn scatter_draws_classes() {
        let pts = vec![(0.1, 100.0, 0), (0.5, 1_000.0, 1), (0.9, 10_000.0, 2)];
        let s = ascii_scatter(&pts, 40, 10);
        assert!(s.contains('.'));
        assert!(s.contains('o'));
        assert!(s.contains('#'));
        assert_eq!(ascii_scatter(&[], 10, 5), "(no points)\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(times(2.415), "2.42x");
        assert_eq!(pct(0.048), "4.8%");
    }
}
