//! # dhdl-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§V):
//!
//! * `table2` — the benchmark suite and dataset sizes;
//! * `table3` — average absolute estimation error for ALMs, DSPs, BRAMs
//!   and runtime, over Pareto points per benchmark;
//! * `table4` — estimation speed per design point vs. the mock commercial
//!   HLS tool (restricted and full design spaces);
//! * `fig5`  — design-space scatter data (ALM/DSP/BRAM utilization vs.
//!   log-cycles) with Pareto fronts and boundedness analysis;
//! * `fig6`  — speedups of the best generated designs over the modeled
//!   6-core Xeon CPU baseline;
//! * `ablations` — MetaPipe-off, raw-analytical-estimator and
//!   pruning-off studies.
//!
//! Each binary prints the paper's corresponding numbers next to the
//! reproduced ones and writes CSV into `results/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use experiments::{Harness, PointEval};
