//! Shared experiment machinery: a calibrated harness plus end-to-end
//! evaluation of individual design points (estimate + synthesize +
//! simulate).

use dhdl_apps::Benchmark;
use dhdl_core::{Design, ParamValues};
use dhdl_dse::{explore, spread, DseOptions, DseResult};
use dhdl_estimate::Estimator;
use dhdl_sim::{simulate, Bindings, SimResult};
use dhdl_synth::{synthesize, SynthReport};
use dhdl_target::{AreaReport, Platform};

/// A calibrated evaluation harness: platform, trained estimator, and the
/// DSE configuration used across experiments.
#[derive(Debug, Clone)]
pub struct Harness {
    /// The target platform (Stratix V on MAIA).
    pub platform: Platform,
    /// The calibrated estimator.
    pub estimator: Estimator,
    /// DSE options (sample budget, seed, memory cap).
    pub dse: DseOptions,
}

impl Harness {
    /// Build a harness: calibrates the estimator against the synthesis
    /// model (the paper's one-time, application-independent training).
    ///
    /// Trained models are cached on disk (keyed by target and seed) in the
    /// results directory, mirroring the paper's "characterized once for a
    /// given target device and toolchain" workflow: the first run per seed
    /// trains; later runs load in milliseconds.
    ///
    /// Sweep resilience knobs come from the environment so every
    /// experiment driver shares them: `DHDL_DSE_THREADS` (worker
    /// threads, 0 = all cores), `DHDL_DSE_DEADLINE_MS` (wall-clock
    /// budget per sweep), and `DHDL_DSE_CHECKPOINT=1` (stream progress
    /// to `results/checkpoints/<bench>.ckpt` so interrupted sweeps
    /// resume).
    pub fn new(seed: u64, dse_points: usize) -> Self {
        let platform = Platform::maia();
        let estimator = Self::cached_estimator(&platform, seed);
        let threads = std::env::var("DHDL_DSE_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let deadline = std::env::var("DHDL_DSE_DEADLINE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .map(std::time::Duration::from_millis);
        Harness {
            platform,
            estimator,
            dse: DseOptions {
                max_points: dse_points,
                seed,
                threads,
                deadline,
                ..DseOptions::default()
            },
        }
    }

    fn cached_estimator(platform: &Platform, seed: u64) -> Estimator {
        let cache = crate::report::results_dir().join(format!(
            "model_{}_{seed:x}.txt",
            platform
                .fpga
                .name
                .replace(|c: char| !c.is_alphanumeric(), "_")
        ));
        if let Ok(text) = std::fs::read_to_string(&cache) {
            if let Ok(model) = dhdl_estimate::AreaEstimator::from_text(&text) {
                return Estimator::from_model(platform, model);
            }
            eprintln!("stale model cache at {}; retraining", cache.display());
        }
        let estimator = Estimator::calibrate(platform, seed);
        if let Err(e) = std::fs::write(&cache, estimator.area_model().to_text()) {
            eprintln!("could not cache model at {}: {e}", cache.display());
        }
        estimator
    }

    /// Explore a benchmark's design space with the harness settings on
    /// the resilient parallel runner. With `DHDL_DSE_CHECKPOINT=1`,
    /// progress streams to `results/checkpoints/<bench>.ckpt`: an
    /// interrupted sweep (crash, kill, or `DHDL_DSE_DEADLINE_MS` expiry)
    /// resumes from there on the next run, and a completed sweep cleans
    /// its checkpoint up.
    pub fn explore(&self, bench: &dyn Benchmark) -> DseResult {
        let mut opts = self.dse.clone();
        if std::env::var("DHDL_DSE_CHECKPOINT").is_ok_and(|v| v != "0" && !v.is_empty()) {
            opts.checkpoint = Some(
                crate::report::results_dir()
                    .join("checkpoints")
                    .join(format!("{}.ckpt", bench.name())),
            );
        }
        let result = explore(
            |p| bench.build(p),
            &bench.param_space(),
            &self.estimator,
            &opts,
        );
        if result.truncated {
            eprintln!(
                "warning: {} sweep truncated by deadline ({} of {} points skipped); \
                 re-run with DHDL_DSE_CHECKPOINT=1 to resume",
                bench.name(),
                result.counts.skipped,
                result.counts.skipped + result.counts.evaluated + result.discarded
            );
        }
        result
    }

    /// Pick up to `n` spread-out Pareto points from a DSE result.
    pub fn pareto_sample(&self, result: &DseResult, n: usize) -> Vec<ParamValues> {
        spread(&result.pareto, n)
            .into_iter()
            .map(|i| result.points[i].params.clone())
            .collect()
    }

    /// Simulate a built design on the benchmark's inputs.
    ///
    /// # Panics
    ///
    /// Panics if simulation fails (benchmark designs are validated).
    pub fn simulate(&self, bench: &dyn Benchmark, design: &Design) -> SimResult {
        let mut bindings = Bindings::new();
        for (name, data) in bench.inputs() {
            bindings = bindings.bind(&name, data);
        }
        simulate(design, &self.platform, &bindings)
            .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", bench.name()))
    }

    /// Fully evaluate one design point: estimate, synthesize (area ground
    /// truth) and simulate (runtime ground truth + outputs).
    ///
    /// # Panics
    ///
    /// Panics if the design fails to build or simulate.
    pub fn evaluate(&self, bench: &dyn Benchmark, params: &ParamValues) -> PointEval {
        let design = bench
            .build(params)
            .unwrap_or_else(|e| panic!("{}: build failed: {e}", bench.name()));
        let est = self.estimator.estimate(&design);
        let synth = synthesize(&design, &self.platform.fpga);
        let sim = self.simulate(bench, &design);
        PointEval {
            params: params.clone(),
            est_area: est.area,
            est_cycles: est.cycles,
            synth,
            sim_cycles: sim.cycles,
        }
    }
}

/// One fully evaluated design point: estimates vs. ground truth.
#[derive(Debug, Clone)]
pub struct PointEval {
    /// The parameter assignment.
    pub params: ParamValues,
    /// Estimated area.
    pub est_area: AreaReport,
    /// Estimated cycles.
    pub est_cycles: f64,
    /// Synthesis-model ground-truth report.
    pub synth: SynthReport,
    /// Simulated ground-truth cycles.
    pub sim_cycles: f64,
}

impl PointEval {
    /// Relative error of a prediction against truth (0 when both are 0).
    pub fn rel_err(pred: f64, truth: f64) -> f64 {
        if truth.abs() < 1e-9 {
            if pred.abs() < 1e-9 {
                0.0
            } else {
                1.0
            }
        } else {
            ((pred - truth) / truth).abs()
        }
    }

    /// `(alm, dsp, bram, runtime)` relative errors for this point.
    pub fn errors(&self) -> (f64, f64, f64, f64) {
        let truth = self.synth.area_report();
        (
            Self::rel_err(self.est_area.alms, truth.alms),
            Self::rel_err(self.est_area.dsps, truth.dsps),
            Self::rel_err(self.est_area.brams, truth.brams),
            Self::rel_err(self.est_cycles, self.sim_cycles),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_apps::DotProduct;

    #[test]
    fn rel_err_handles_zero_truth() {
        assert_eq!(PointEval::rel_err(0.0, 0.0), 0.0);
        assert_eq!(PointEval::rel_err(5.0, 0.0), 1.0);
        assert!((PointEval::rel_err(110.0, 100.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn harness_end_to_end_on_small_benchmark() {
        let h = Harness::new(3, 40);
        let bench = DotProduct::new(1_920);
        let result = h.explore(&bench);
        assert!(!result.pareto.is_empty());
        let picks = h.pareto_sample(&result, 2);
        assert!(!picks.is_empty());
        let eval = h.evaluate(&bench, &picks[0]);
        let (alm, _dsp, _bram, rt) = eval.errors();
        // Errors are finite and not absurd.
        assert!(alm < 1.0, "alm err {alm}");
        assert!(rt < 1.0, "runtime err {rt}");
    }
}
