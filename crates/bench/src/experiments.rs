//! Shared experiment machinery: a calibrated harness plus end-to-end
//! evaluation of individual design points (estimate + synthesize +
//! simulate).

use std::sync::Arc;

use dhdl_apps::Benchmark;
use dhdl_core::{structural_hash, Design, Fnv64, ParamValues};
use dhdl_dse::{
    explore, model_fingerprint, spread, CacheMode, CachedModel, CostModel, DseOptions, DseResult,
    EstimateCache, SearchStrategy,
};
use dhdl_estimate::{Estimate, Estimator};
use dhdl_sim::{backend_from_env, simulate_with, Bindings, SimResult};
use dhdl_synth::{design_hash, place_and_route, SynthReport};
use dhdl_target::{AreaReport, Platform};

/// A calibrated evaluation harness: platform, trained estimator, and the
/// DSE configuration used across experiments.
#[derive(Debug, Clone)]
pub struct Harness {
    /// The target platform (Stratix V on MAIA).
    pub platform: Platform,
    /// The calibrated estimator.
    pub estimator: Estimator,
    /// DSE options (sample budget, seed, memory cap).
    pub dse: DseOptions,
    /// Maximum devices for the multi-FPGA DSE axis (`DHDL_DSE_NUM_FPGAS`
    /// or `--num-fpgas`; default 1 = single-chip). When `> 1`,
    /// [`Harness::explore`] adds the `num_fpgas` parameter to every
    /// benchmark's space; at 1 the space — and therefore every sweep
    /// artifact — is byte-identical to a build that never heard of
    /// partitioning.
    pub num_fpgas: u32,
    /// The shared estimate cache (`DHDL_DSE_CACHE=off` disables it),
    /// keyed by [`dhdl_core::structural_hash`] and versioned by the
    /// trained model + target fingerprint.
    cache: Option<Arc<EstimateCache>>,
    /// `true` when the cache persists under `results/cache/`
    /// (`DHDL_DSE_CACHE=disk`, the default).
    cache_on_disk: bool,
}

impl Harness {
    /// Build a harness: calibrates the estimator against the synthesis
    /// model (the paper's one-time, application-independent training).
    ///
    /// Trained models are cached on disk (keyed by target and seed) in the
    /// results directory, mirroring the paper's "characterized once for a
    /// given target device and toolchain" workflow: the first run per seed
    /// trains; later runs load in milliseconds.
    ///
    /// Sweep resilience knobs come from the environment so every
    /// experiment driver shares them: `DHDL_DSE_THREADS` (worker
    /// threads, 0 = all cores), `DHDL_DSE_DEADLINE_MS` (wall-clock
    /// budget per sweep), `DHDL_DSE_CHECKPOINT=1` (stream progress
    /// to `results/checkpoints/<bench>.ckpt` so interrupted sweeps
    /// resume), `DHDL_DSE_CACHE=off|mem|disk` (estimate memoization;
    /// `disk` — the default — persists under `results/cache/` keyed by
    /// the trained model's fingerprint, so repeated runs skip
    /// re-estimating every design they have seen before), and
    /// `DHDL_DSE_STRATEGY=random|surrogate` (how the sweep spends its
    /// point budget; see [`SearchStrategy`]), and `DHDL_DSE_NUM_FPGAS`
    /// (maximum devices for the multi-FPGA partitioning axis; default 1
    /// keeps sweeps bit-identical to the single-chip toolchain).
    pub fn new(seed: u64, dse_points: usize) -> Self {
        let platform = Platform::maia();
        let estimator = Self::cached_estimator(&platform, seed);
        let threads = std::env::var("DHDL_DSE_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let deadline = std::env::var("DHDL_DSE_DEADLINE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .map(std::time::Duration::from_millis);
        let num_fpgas = std::env::var("DHDL_DSE_NUM_FPGAS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1)
            .max(1);
        let mode = CacheMode::from_env();
        let cache = match mode {
            CacheMode::Off => None,
            CacheMode::Memory => Some(Arc::new(EstimateCache::new(model_fingerprint(&estimator)))),
            CacheMode::Disk => Some(Arc::new(EstimateCache::load(
                &Self::cache_dir(),
                model_fingerprint(&estimator),
            ))),
        };
        Harness {
            platform,
            estimator,
            dse: DseOptions {
                max_points: dse_points,
                seed,
                threads,
                deadline,
                strategy: SearchStrategy::from_env(),
                ..DseOptions::default()
            },
            num_fpgas,
            cache,
            cache_on_disk: mode == CacheMode::Disk,
        }
    }

    /// The persistent estimate-cache directory.
    fn cache_dir() -> std::path::PathBuf {
        crate::report::results_dir().join("cache")
    }

    /// The parameter-memo salt for a benchmark: its name, its dataset,
    /// and the canonical structure of its default-parameter design.
    /// Distinct benchmarks must never share a salt (their identical
    /// parameter assignments would alias in the shared cache), and
    /// mixing in the default design's [`structural_hash`] retires stale
    /// memo entries when the metaprogram itself changes shape.
    fn bench_salt(bench: &dyn Benchmark) -> u64 {
        let mut h = Fnv64::new();
        h.write(bench.name().as_bytes());
        h.write(bench.dataset_desc().as_bytes());
        match bench.build(&bench.default_params()) {
            Ok(design) => h.write_u64(structural_hash(&design)),
            // A benchmark whose defaults do not build still sweeps; its
            // memo is simply keyed without the structural guard.
            Err(_) => h.write_u64(0),
        }
        h.finish()
    }

    fn cached_estimator(platform: &Platform, seed: u64) -> Estimator {
        let cache = crate::report::results_dir().join(format!(
            "model_{}_{seed:x}.txt",
            platform
                .fpga
                .name
                .replace(|c: char| !c.is_alphanumeric(), "_")
        ));
        if let Ok(text) = std::fs::read_to_string(&cache) {
            if let Ok(model) = dhdl_estimate::AreaEstimator::from_text(&text) {
                return Estimator::from_model(platform, model);
            }
            eprintln!("stale model cache at {}; retraining", cache.display());
        }
        let estimator = Estimator::calibrate(platform, seed);
        if let Err(e) = std::fs::write(&cache, estimator.area_model().to_text()) {
            eprintln!("could not cache model at {}: {e}", cache.display());
        }
        estimator
    }

    /// Explore a benchmark's design space with the harness settings on
    /// the resilient parallel runner. With `DHDL_DSE_CHECKPOINT=1`,
    /// progress streams to `results/checkpoints/<bench>.ckpt`: an
    /// interrupted sweep (crash, kill, or `DHDL_DSE_DEADLINE_MS` expiry)
    /// resumes from there on the next run, and a completed sweep cleans
    /// its checkpoint up.
    pub fn explore(&self, bench: &dyn Benchmark) -> DseResult {
        let _span = dhdl_obs::span_labeled("sweep", bench.name());
        let mut opts = self.dse.clone();
        if self.cache.is_some() {
            // Enable the parameter-keyed fast path: warm sweeps answer
            // repeated assignments without rebuilding or rehashing the
            // design.
            opts.cache_salt = Some(Self::bench_salt(bench));
        }
        if std::env::var("DHDL_DSE_CHECKPOINT").is_ok_and(|v| v != "0" && !v.is_empty()) {
            opts.checkpoint = Some(
                crate::report::results_dir()
                    .join("checkpoints")
                    .join(format!("{}.ckpt", bench.name())),
            );
        }
        let build = |p: &ParamValues| bench.build(p);
        let mut space = bench.param_space();
        if self.num_fpgas > 1 {
            // The device count joins the space as an ordinary parameter;
            // benchmark metaprograms ignore it (partitioning happens at
            // estimation time, not construction time).
            space.devices(u64::from(self.num_fpgas));
        }
        let result = match &self.cache {
            Some(cache) => {
                let model = CachedModel::new(&self.estimator, cache.as_ref());
                let result = explore(build, &space, &model, &opts);
                self.flush_cache();
                result
            }
            None => explore(build, &space, &self.estimator, &opts),
        };
        if result.truncated {
            eprintln!(
                "warning: {} sweep truncated by deadline ({} of {} points skipped); \
                 re-run with DHDL_DSE_CHECKPOINT=1 to resume",
                bench.name(),
                result.counts.skipped,
                result.counts.skipped + result.counts.evaluated + result.discarded
            );
        }
        result
    }

    /// Estimate one design through the shared cache (identical to
    /// `self.estimator.estimate`, memoized). Callers that issue many
    /// single-point estimates should [`Harness::flush_cache`] when done.
    pub fn estimate(&self, design: &Design) -> Estimate {
        match &self.cache {
            Some(cache) => CachedModel::new(&self.estimator, cache.as_ref()).estimate(design),
            None => self.estimator.estimate(design),
        }
    }

    /// Persist the estimate cache under `results/cache/` (no-op unless
    /// running in the default `DHDL_DSE_CACHE=disk` mode).
    pub fn flush_cache(&self) {
        if !self.cache_on_disk {
            return;
        }
        if let Some(cache) = &self.cache {
            if let Err(e) = cache.save(&Self::cache_dir()) {
                eprintln!("warning: could not persist estimate cache: {e}");
            }
        }
    }

    /// Counters of the shared estimate cache, when one is enabled.
    pub fn cache_stats(&self) -> Option<dhdl_dse::CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Pick up to `n` spread-out Pareto points from a DSE result.
    pub fn pareto_sample(&self, result: &DseResult, n: usize) -> Vec<ParamValues> {
        spread(&result.pareto, n)
            .into_iter()
            .map(|i| result.points[i].params.clone())
            .collect()
    }

    /// Simulate a built design on the benchmark's inputs.
    ///
    /// The backend is selected by `DHDL_SIM_BACKEND` (`interp` | `tape`);
    /// both produce bit-identical results, so experiment outputs do not
    /// depend on the knob — only wall-clock time does.
    ///
    /// # Panics
    ///
    /// Panics if simulation fails (benchmark designs are validated).
    pub fn simulate(&self, bench: &dyn Benchmark, design: &Design) -> SimResult {
        let mut bindings = Bindings::new();
        for (name, data) in bench.inputs() {
            bindings = bindings.bind(&name, data);
        }
        simulate_with(backend_from_env(), design, &self.platform, &bindings)
            .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", bench.name()))
    }

    /// Fully evaluate one design point: estimate, synthesize (area ground
    /// truth) and simulate (runtime ground truth + outputs).
    ///
    /// # Panics
    ///
    /// Panics if the design fails to build or simulate.
    pub fn evaluate(&self, bench: &dyn Benchmark, params: &ParamValues) -> PointEval {
        let design = bench
            .build(params)
            .unwrap_or_else(|e| panic!("{}: build failed: {e}", bench.name()));
        // One elaboration feeds the estimate and the synthesis model;
        // `place_and_route` on the shared netlist is exactly
        // `dhdl_synth::synthesize` without its internal re-elaboration.
        let net = self.estimator.elaborate(&design);
        let est = self.estimator.estimate_net(&design, &net);
        let synth = place_and_route(design_hash(&design), &net, &self.platform.fpga);
        let sim = self.simulate(bench, &design);
        PointEval {
            params: params.clone(),
            est_area: est.area,
            est_cycles: est.cycles,
            synth,
            sim_cycles: sim.cycles,
        }
    }
}

/// One fully evaluated design point: estimates vs. ground truth.
#[derive(Debug, Clone)]
pub struct PointEval {
    /// The parameter assignment.
    pub params: ParamValues,
    /// Estimated area.
    pub est_area: AreaReport,
    /// Estimated cycles.
    pub est_cycles: f64,
    /// Synthesis-model ground-truth report.
    pub synth: SynthReport,
    /// Simulated ground-truth cycles.
    pub sim_cycles: f64,
}

impl PointEval {
    /// Relative error of a prediction against truth (0 when both are 0).
    pub fn rel_err(pred: f64, truth: f64) -> f64 {
        if truth.abs() < 1e-9 {
            if pred.abs() < 1e-9 {
                0.0
            } else {
                1.0
            }
        } else {
            ((pred - truth) / truth).abs()
        }
    }

    /// `(alm, dsp, bram, runtime)` relative errors for this point.
    pub fn errors(&self) -> (f64, f64, f64, f64) {
        let truth = self.synth.area_report();
        (
            Self::rel_err(self.est_area.alms, truth.alms),
            Self::rel_err(self.est_area.dsps, truth.dsps),
            Self::rel_err(self.est_area.brams, truth.brams),
            Self::rel_err(self.est_cycles, self.sim_cycles),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_apps::DotProduct;

    #[test]
    fn rel_err_handles_zero_truth() {
        assert_eq!(PointEval::rel_err(0.0, 0.0), 0.0);
        assert_eq!(PointEval::rel_err(5.0, 0.0), 1.0);
        assert!((PointEval::rel_err(110.0, 100.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn cached_estimate_matches_direct_estimator() {
        let h = Harness::new(3, 20);
        let bench = DotProduct::new(1_920);
        let design = bench.build(&bench.default_params()).unwrap();
        let direct = h.estimator.estimate(&design);
        // Twice: the second call is a cache hit (when caching is on) and
        // must be bit-identical either way.
        assert_eq!(h.estimate(&design), direct);
        assert_eq!(h.estimate(&design), direct);
        // The shared-netlist evaluation path equals the per-call one.
        let net = h.estimator.elaborate(&design);
        assert_eq!(
            place_and_route(design_hash(&design), &net, &h.platform.fpga),
            dhdl_synth::synthesize(&design, &h.platform.fpga)
        );
    }

    #[test]
    fn harness_end_to_end_on_small_benchmark() {
        let h = Harness::new(3, 40);
        let bench = DotProduct::new(1_920);
        let result = h.explore(&bench);
        assert!(!result.pareto.is_empty());
        let picks = h.pareto_sample(&result, 2);
        assert!(!picks.is_empty());
        let eval = h.evaluate(&bench, &picks[0]);
        let (alm, _dsp, _bram, rt) = eval.errors();
        // Errors are finite and not absurd.
        assert!(alm < 1.0, "alm err {alm}");
        assert!(rt < 1.0, "runtime err {rt}");
    }
}
