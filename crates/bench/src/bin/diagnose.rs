//! Developer tool: per-point breakdown of estimate vs. ground truth for
//! one benchmark's Pareto points (signed errors, raw components).
//!
//! Usage: `diagnose [benchmark] [pareto_points]`

use dhdl_bench::report::Table;
use dhdl_bench::Harness;
use dhdl_synth::elaborate;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("gda");
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let bench = dhdl_apps::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`");
        std::process::exit(1);
    });
    let harness = Harness::new(0xD4D1, 1_000);
    let dse = harness.explore(bench.as_ref());
    let picks = harness.pareto_sample(&dse, n);
    let mut t = Table::new(&[
        "params",
        "ALM est/truth",
        "raw luts(p/u)",
        "regs est/truth",
        "BRAM est/truth (raw)",
        "DSP est/truth",
        "cycles est/sim",
    ]);
    for p in &picks {
        let e = harness.evaluate(bench.as_ref(), p);
        let design = bench.build(p).expect("builds");
        let net = elaborate(&design, &harness.platform.fpga);
        t.row(&[
            p.to_string(),
            format!("{:.0}/{:.0}", e.est_area.alms, e.synth.alms),
            format!("{:.0}/{:.0}", net.raw.lut_packable, net.raw.lut_unpackable),
            format!("{:.0}/{:.0}", e.est_area.regs, e.synth.regs),
            format!(
                "{:.0}/{:.0} ({:.0})",
                e.est_area.brams, e.synth.brams, net.raw.brams
            ),
            format!("{:.0}/{:.0}", e.est_area.dsps, e.synth.dsps),
            format!("{:.0}/{:.0}", e.est_cycles, e.sim_cycles),
        ]);
    }
    println!("{}", t.render());
}
