//! Table III: average absolute estimation error for resource usage and
//! runtime.
//!
//! For each benchmark, runs design space exploration, selects five
//! spread-out Pareto points (§V-B: "We select five Pareto points generated
//! from our design space exploration for each of our benchmarks"),
//! synthesizes and simulates each (the vendor-toolchain and FPGA-board
//! substitutes), and compares against the fast estimates.

use dhdl_bench::report::{pct, write_result, Table};
use dhdl_bench::Harness;

/// The paper's Table III values, for side-by-side reporting.
const PAPER: &[(&str, f64, f64, f64, f64)] = &[
    ("dotproduct", 0.017, 0.000, 0.131, 0.028),
    ("outerprod", 0.044, 0.297, 0.128, 0.013),
    ("gemm", 0.127, 0.114, 0.174, 0.184),
    ("tpchq6", 0.023, 0.000, 0.054, 0.031),
    ("blackscholes", 0.053, 0.053, 0.070, 0.034),
    ("gda", 0.052, 0.062, 0.084, 0.067),
    ("kmeans", 0.020, 0.000, 0.219, 0.070),
];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let points = env_usize("DHDL_DSE_POINTS", 1_000);
    let pareto_n = env_usize("DHDL_PARETO_POINTS", 5);
    eprintln!("calibrating estimator (one-time, application independent)...");
    let harness = Harness::new(0xD4D1, points);

    let mut t = Table::new(&[
        "Benchmark",
        "ALMs",
        "DSPs",
        "BRAM",
        "Runtime",
        "paper ALM/DSP/BRAM/RT",
    ]);
    let mut sums = [0.0f64; 4];
    let mut count = 0usize;
    for bench in dhdl_apps::all() {
        eprintln!("exploring {} ...", bench.name());
        let dse = harness.explore(bench.as_ref());
        let picks = harness.pareto_sample(&dse, pareto_n);
        let mut errs = [0.0f64; 4];
        for params in &picks {
            let eval = harness.evaluate(bench.as_ref(), params);
            let (a, d, b, r) = eval.errors();
            errs[0] += a;
            errs[1] += d;
            errs[2] += b;
            errs[3] += r;
        }
        let n = picks.len().max(1) as f64;
        for e in errs.iter_mut() {
            *e /= n;
        }
        let paper = PAPER
            .iter()
            .find(|p| p.0 == bench.name())
            .copied()
            .unwrap_or((bench.name(), 0.0, 0.0, 0.0, 0.0));
        t.row(&[
            bench.name().to_string(),
            pct(errs[0]),
            pct(errs[1]),
            pct(errs[2]),
            pct(errs[3]),
            format!(
                "{} / {} / {} / {}",
                pct(paper.1),
                pct(paper.2),
                pct(paper.3),
                pct(paper.4)
            ),
        ]);
        for (s, e) in sums.iter_mut().zip(errs) {
            *s += e;
        }
        count += 1;
    }
    let n = count.max(1) as f64;
    t.row(&[
        "Average".to_string(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n),
        "4.8% / 7.5% / 12.3% / 6.1%".to_string(),
    ]);
    println!("\nTable III: average absolute error for resource usage and runtime");
    println!("({pareto_n} Pareto points per benchmark, {points} DSE samples)\n");
    println!("{}", t.render());
    let path = write_result("table3.csv", &t.to_csv());
    println!("wrote {}", path.display());
}
