//! Figure 6: speedups of the best generated designs over the 6-core CPU.
//!
//! For each benchmark: explore the design space, take the
//! fastest valid (Pareto) design, simulate it on the platform model to get
//! FPGA execution time, and compare against the modeled Xeon E5-2630 CPU
//! time for the same (scaled) dataset. Measured host-CPU kernel times are
//! reported alongside for reference (they are host-specific and not used
//! for the normalized comparison).

use dhdl_bench::report::{times, write_result, Table};
use dhdl_bench::Harness;
use dhdl_cpu::XeonModel;
use dhdl_dse::refine;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The paper's Figure 6 speedups.
const PAPER: &[(&str, f64)] = &[
    ("dotproduct", 1.07),
    ("outerprod", 2.42),
    ("gemm", 0.10),
    ("tpchq6", 1.11),
    ("blackscholes", 16.73),
    ("gda", 4.55),
    ("kmeans", 1.15),
];

fn main() {
    let points = env_usize("DHDL_DSE_POINTS", 1_500);
    eprintln!("calibrating estimator...");
    let harness = Harness::new(0xF166, points);
    let xeon = XeonModel::default();

    let mut t = Table::new(&[
        "Benchmark",
        "FPGA (ms)",
        "CPU model (ms)",
        "Speedup",
        "Paper",
        "Host CPU (ms, measured)",
        "Best params",
    ]);
    let mut csv_rows = Vec::new();
    for bench in dhdl_apps::all() {
        eprintln!("exploring {} ...", bench.name());
        let sampled = harness.explore(bench.as_ref());
        // Local-search refinement around the sampled Pareto front.
        let dse = refine(
            |p| bench.build(p),
            &bench.param_space(),
            &harness.estimator,
            &harness.dse,
            &sampled,
            2,
        );
        let best = dse
            .best()
            .unwrap_or_else(|| panic!("{}: no valid design found", bench.name()));
        eprintln!(
            "  best: {} (est {:.0} cycles); simulating...",
            best.params, best.cycles
        );
        let design = bench.build(&best.params).expect("best point builds");
        let sim = harness.simulate(bench.as_ref(), &design);
        let fpga_s = sim.seconds(&harness.platform);
        let cpu_s = xeon.seconds(&bench.work());
        let host = dhdl_cpu::run(bench.as_ref(), 3);
        let speedup = cpu_s / fpga_s;
        let paper = PAPER
            .iter()
            .find(|p| p.0 == bench.name())
            .map_or(0.0, |p| p.1);
        t.row(&[
            bench.name().to_string(),
            format!("{:.3}", fpga_s * 1e3),
            format!("{:.3}", cpu_s * 1e3),
            times(speedup),
            times(paper),
            format!("{:.3}", host.elapsed.as_secs_f64() * 1e3),
            best.params.to_string(),
        ]);
        csv_rows.push(format!(
            "{},{:.6e},{:.6e},{:.3},{:.3}",
            bench.name(),
            fpga_s,
            cpu_s,
            speedup,
            paper
        ));
    }
    println!("\nFigure 6: speedups of most performant FPGA designs over the 6-core CPU\n");
    println!("{}", t.render());
    let csv = format!(
        "benchmark,fpga_s,cpu_model_s,speedup,paper_speedup\n{}\n",
        csv_rows.join("\n")
    );
    let path = write_result("fig6.csv", &csv);
    println!("wrote {}", path.display());
}
