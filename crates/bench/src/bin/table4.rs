//! Table IV: average estimation time per design point, DHDL vs. the mock
//! commercial HLS tool.
//!
//! The paper compares 250 GDA design points: the DHDL estimator takes
//! 0.017 s/design, Vivado HLS takes 4.75 s/design when outer-loop
//! pipelining is ignored ("restricted") and 111.06 s/design over the full
//! space where 30 of the 250 points pipeline the outer loop (unrolling all
//! inner loops first). We reproduce the same protocol against the
//! `dhdl-hls` baseline at the paper's GDA dimension (C = 96).

use std::time::Instant;

use dhdl_apps::{Benchmark, Gda};
use dhdl_bench::report::{write_result, Table};
use dhdl_bench::Harness;
use dhdl_dse::LegalSpace;
use dhdl_hls::{estimate as hls_estimate, HlsMode, ResourceLimits};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n_points = env_usize("DHDL_T4_POINTS", 250);
    let n_pipelined = env_usize("DHDL_T4_PIPELINED", 30).min(n_points);
    // The paper's GDA dimension for the HLS comparison (C = 96); the row
    // count only scales trip counts linearly and is kept modest.
    let gda = Gda::new(1_536, 96);

    eprintln!("calibrating estimator...");
    let harness = Harness::new(0x7AB4, 1_000);

    // --- Our estimator: time per (instantiate + estimate) over sampled
    // legal design points.
    let space = LegalSpace::new(&gda.param_space());
    let samples = space.sample(n_points, 42);
    let start = Instant::now();
    let mut checksum = 0.0f64;
    for params in &samples {
        let design = gda.build(params).expect("legal GDA point builds");
        let est = harness.estimator.estimate(&design);
        checksum += est.cycles;
    }
    let ours = start.elapsed().as_secs_f64() / samples.len() as f64;
    eprintln!("ours: {:.6} s/design (checksum {checksum:.3e})", ours);

    // --- HLS baseline: the same number of points; design parameters for
    // HLS are inner-loop unroll factors, plus an outer-loop PIPELINE
    // directive on a subset (Figure 2's L1).
    let limits = ResourceLimits::default();
    let unrolls = [1u32, 2, 4, 8, 16];
    let mut restricted_total = 0.0f64;
    let mut full_total = 0.0f64;
    for i in 0..n_points {
        let unroll = unrolls[i % unrolls.len()];
        let outer = i < n_pipelined;
        let mut kernel = gda.hls_kernel().expect("gda has an HLS form");
        // Apply the unroll factor to the innermost loops.
        for l in &mut kernel.loops {
            l.pipeline = outer;
            for c in &mut l.children {
                c.unroll = unroll;
                for cc in &mut c.children {
                    cc.unroll = unroll;
                }
            }
        }
        let r = hls_estimate(&kernel, HlsMode::Restricted, &limits);
        restricted_total += r.elapsed.as_secs_f64();
        let f = hls_estimate(&kernel, HlsMode::Full, &limits);
        full_total += f.elapsed.as_secs_f64();
        if outer {
            eprintln!(
                "  point {i}: pipelined outer loop, {} scheduled ops, full {:.3}s",
                f.scheduled_ops,
                f.elapsed.as_secs_f64()
            );
        }
    }
    let restricted = restricted_total / n_points as f64;
    let full = full_total / n_points as f64;

    let mut t = Table::new(&["Tool", "s/design", "slowdown vs ours", "paper"]);
    t.row(&[
        "Our approach".into(),
        format!("{ours:.6}"),
        "1x".into(),
        "0.017 s/design".into(),
    ]);
    t.row(&[
        "HLS restricted (no outer pipelining)".into(),
        format!("{restricted:.4}"),
        format!("{:.0}x", restricted / ours),
        "4.75 s/design (279x)".into(),
    ]);
    t.row(&[
        "HLS full".into(),
        format!("{full:.4}"),
        format!("{:.0}x", full / ours),
        "111.06 s/design (6533x)".into(),
    ]);
    println!("\nTable IV: average estimation time per design point");
    println!("(GDA, {n_points} design points, {n_pipelined} with outer-loop pipelining)\n");
    println!("{}", t.render());
    let path = write_result("table4.csv", &t.to_csv());
    println!("wrote {}", path.display());
}
