//! Simulator backend throughput: interpreter vs. tape-compiled.
//!
//! Runs every benchmark's default design through both simulator backends,
//! measures runs/sec (tape compilation amortized, as in DSE and fuzzing),
//! cross-checks the results bit-for-bit, and writes
//! `results/BENCH_sim.json` with per-benchmark throughput and speedup.
//! `DHDL_SIMBENCH_MIN_MS` (default 200) sets the minimum measured
//! wall-clock per backend per benchmark.

use std::fmt::Write as _;
use std::time::Instant;

use dhdl_bench::report::{write_result, Table};
use dhdl_sim::{compile, simulate, Bindings, CompileError, SimResult};
use dhdl_target::Platform;

/// Time `f` by repeating it until `min_ms` of wall-clock has elapsed;
/// returns seconds per run.
fn time_per_run<F: FnMut() -> SimResult>(mut f: F, min_ms: u64) -> f64 {
    let _ = f(); // warm-up, and the caller's bit-identity witness
    let min = std::time::Duration::from_millis(min_ms);
    let mut runs = 0u64;
    let start = Instant::now();
    loop {
        std::hint::black_box(f());
        runs += 1;
        if start.elapsed() >= min {
            return start.elapsed().as_secs_f64() / runs as f64;
        }
    }
}

fn main() {
    dhdl_obs::init_from_env();
    let min_ms = std::env::var("DHDL_SIMBENCH_MIN_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let platform = Platform::maia();

    let mut table = Table::new(&[
        "Benchmark",
        "interp runs/s",
        "tape runs/s",
        "speedup",
        "compile ms",
        "bit-identical",
    ]);
    let mut rows = Vec::new();
    for bench in dhdl_apps::all() {
        let name = bench.name().to_string();
        let design = bench
            .build(&bench.default_params())
            .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
        let mut bindings = Bindings::new();
        for (input, data) in bench.inputs() {
            bindings = bindings.bind(&input, data);
        }

        let t0 = Instant::now();
        let compiled = match compile(&design, &platform) {
            Ok(c) => c,
            Err(CompileError::Unsupported(why)) => {
                eprintln!("{name}: tape backend unsupported ({why}); skipping");
                continue;
            }
        };
        let compile_secs = t0.elapsed().as_secs_f64();

        let interp = simulate(&design, &platform, &bindings).expect("interpreter runs");
        let tape = compiled.run(&bindings).expect("tape runs");
        let bit_identical = interp.bit_diff(&tape).is_none();

        let interp_spr = time_per_run(|| simulate(&design, &platform, &bindings).unwrap(), min_ms);
        let tape_spr = time_per_run(|| compiled.run(&bindings).unwrap(), min_ms);
        let speedup = interp_spr / tape_spr;
        table.row(&[
            name.clone(),
            format!("{:.0}", 1.0 / interp_spr),
            format!("{:.0}", 1.0 / tape_spr),
            format!("{speedup:.1}x"),
            format!("{:.2}", compile_secs * 1e3),
            bit_identical.to_string(),
        ]);
        rows.push((name, interp_spr, tape_spr, compile_secs, bit_identical));
    }

    println!("\nSimulator backend throughput (tape compilation amortized)\n");
    println!("{}", table.render());

    let geomean = (rows.iter().map(|(_, i, t, _, _)| (i / t).ln()).sum::<f64>()
        / rows.len().max(1) as f64)
        .exp();
    println!("geomean speedup: {geomean:.1}x");
    let all_identical = rows.iter().all(|r| r.4);

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, (name, interp_spr, tape_spr, compile_secs, bitid)) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{name}\", \"interp_runs_per_sec\": {:.1}, \
             \"tape_runs_per_sec\": {:.1}, \"speedup\": {:.2}, \
             \"compile_ms\": {:.3}, \"bit_identical\": {bitid}}}",
            1.0 / interp_spr,
            1.0 / tape_spr,
            interp_spr / tape_spr,
            compile_secs * 1e3
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(
        json,
        "  ],\n  \"geomean_speedup\": {geomean:.2},\n  \"all_bit_identical\": {all_identical}\n}}"
    );
    let path = write_result("BENCH_sim.json", &json);
    println!("wrote {}", path.display());
    dhdl_obs::finish("simbench");
}
