//! The `dhdl` command-line tool: estimate, explore, simulate, profile and
//! generate code for any benchmark of the suite, from the shell.
//!
//! ```text
//! dhdl list
//! dhdl estimate <benchmark> [param=value ...]
//! dhdl explore  <benchmark> [--points N]
//! dhdl simulate <benchmark> [param=value ...] [--profile]
//! dhdl codegen  <benchmark> [param=value ...]
//! dhdl bottleneck <benchmark> [param=value ...]
//! dhdl trace    <benchmark> [param=value ...]   # writes results/<bench>.vcd
//! dhdl hls      <benchmark>                     # Figure 2 style C source
//! ```

use dhdl_bench::report::Table;
use dhdl_bench::Harness;
use dhdl_core::ParamValues;
use dhdl_synth::{maxj, synthesize};

fn main() {
    dhdl_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        usage();
        return;
    };
    match cmd {
        "list" => list(),
        "estimate" | "explore" | "simulate" | "codegen" | "bottleneck" | "trace" | "hls" => {
            let Some(name) = args.get(1) else {
                eprintln!("missing benchmark name");
                usage();
                std::process::exit(2);
            };
            let Some(bench) = dhdl_apps::by_name(name) else {
                eprintln!("unknown benchmark `{name}` (try `dhdl list`)");
                std::process::exit(2);
            };
            let rest = &args[2..];
            match cmd {
                "estimate" => estimate(bench.as_ref(), rest),
                "explore" => explore(bench.as_ref(), rest),
                "simulate" => sim(bench.as_ref(), rest),
                "codegen" => codegen(bench.as_ref(), rest),
                "bottleneck" => bottleneck(bench.as_ref(), rest),
                "trace" => trace(bench.as_ref(), rest),
                "hls" => hls(bench.as_ref()),
                _ => unreachable!(),
            }
        }
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command `{other}`");
            usage();
            std::process::exit(2);
        }
    }
    dhdl_obs::finish("dhdl");
}

fn usage() {
    eprintln!(
        "usage:\n  dhdl list\n  dhdl estimate <benchmark> [param=value ...]\n  \
         dhdl explore  <benchmark> [--points N] [--strategy random|surrogate] [--num-fpgas K]\n  \
         dhdl simulate <benchmark> [param=value ...] [--profile]\n  \
         dhdl codegen  <benchmark> [param=value ...]\n  \
         dhdl bottleneck <benchmark> [param=value ...]"
    );
}

/// Parse `key=value` overrides on top of the benchmark's defaults.
fn params_from(bench: &dyn dhdl_apps::Benchmark, rest: &[String]) -> ParamValues {
    let mut p = bench.default_params();
    for arg in rest {
        if let Some((k, v)) = arg.split_once('=') {
            match v.parse::<u64>() {
                Ok(v) => {
                    p.set(k, v);
                }
                Err(_) => {
                    eprintln!("ignoring non-numeric parameter `{arg}`");
                }
            }
        }
    }
    if !bench.param_space().is_legal(&p) {
        eprintln!("warning: {p} is outside the legal (pruned) space");
    }
    p
}

fn flag(rest: &[String], name: &str) -> bool {
    rest.iter().any(|a| a == name)
}

fn opt_usize(rest: &[String], name: &str, default: usize) -> usize {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn opt_str(rest: &[String], name: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .cloned()
}

fn list() {
    let mut t = Table::new(&["benchmark", "description", "scaled dataset", "space size"]);
    for b in dhdl_apps::all().into_iter().chain(dhdl_apps::dnn()) {
        t.row(&[
            b.name().to_string(),
            b.description().to_string(),
            b.dataset_desc(),
            b.param_space().size().to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn estimate(bench: &dyn dhdl_apps::Benchmark, rest: &[String]) {
    let p = params_from(bench, rest);
    eprintln!("calibrating estimator...");
    let harness = Harness::new(0xC11, 100);
    let design = bench.build(&p).expect("design builds");
    // Cached single-point path (results/cache/ answers repeat queries).
    let est = harness.estimate(&design);
    harness.flush_cache();
    let platform = &harness.platform;
    println!("design:  {} with {p}", design.name());
    println!(
        "cycles:  {:.0} ({:.4} ms at {} MHz)",
        est.cycles,
        est.seconds(platform) * 1e3,
        platform.fpga.fabric_clock_hz / 1e6
    );
    println!(
        "area:    {:.0} ALMs ({:.1}%), {:.0} DSPs, {:.0} BRAMs, {:.0} regs",
        est.area.alms,
        100.0 * est.area.alms / platform.fpga.alms as f64,
        est.area.dsps,
        est.area.brams,
        est.area.regs
    );
    println!(
        "power:   {:.2} W ({:.3} mJ per run)",
        est.watts(platform),
        est.joules(platform) * 1e3
    );
    let truth = synthesize(&design, &platform.fpga);
    println!(
        "synth:   {:.0} ALMs, {:.0} DSPs, {:.0} BRAMs (place-and-route model)",
        truth.alms, truth.dsps, truth.brams
    );
    println!(
        "class:   {}",
        dhdl_estimate::classify(&design, &est, platform)
    );
}

/// Print the benchmark in the C-like HLS form (Figure 2 of the paper).
fn hls(bench: &dyn dhdl_apps::Benchmark) {
    match bench.hls_kernel() {
        Some(k) => println!("{}", dhdl_hls::to_c(&k)),
        None => eprintln!("{} has no HLS form", bench.name()),
    }
}

fn explore(bench: &dyn dhdl_apps::Benchmark, rest: &[String]) {
    let points = opt_usize(rest, "--points", 1_000);
    eprintln!("calibrating estimator...");
    let mut harness = Harness::new(0xC12, points);
    // The flag wins over the DHDL_DSE_STRATEGY env var Harness read.
    if let Some(name) = opt_str(rest, "--strategy") {
        match dhdl_dse::SearchStrategy::parse(&name) {
            Ok(s) => harness.dse.strategy = s,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
    // The flag wins over DHDL_DSE_NUM_FPGAS; > 1 adds the `num_fpgas`
    // partitioning axis to the swept space.
    harness.num_fpgas = opt_usize(rest, "--num-fpgas", harness.num_fpgas as usize)
        .clamp(1, u32::MAX as usize) as u32;
    eprintln!("search strategy: {}", harness.dse.strategy.name());
    if harness.num_fpgas > 1 {
        eprintln!("multi-FPGA axis: up to {} devices", harness.num_fpgas);
    }
    let dse = harness.explore(bench);
    println!(
        "space {} points; {}; {} Pareto-optimal:",
        dse.space_size,
        dse.counts.summary(),
        dse.pareto.len()
    );
    println!("sweep throughput: {}", dse.stats.summary());
    let mut t = Table::new(&["params", "cycles", "ALMs", "DSPs", "BRAMs"]);
    for p in dse.pareto_points().take(15) {
        t.row(&[
            p.params.to_string(),
            format!("{:.0}", p.cycles),
            format!("{:.0}", p.area.alms),
            format!("{:.0}", p.area.dsps),
            format!("{:.0}", p.area.brams),
        ]);
    }
    println!("{}", t.render());
}

fn sim(bench: &dyn dhdl_apps::Benchmark, rest: &[String]) {
    let p = params_from(bench, rest);
    let harness = Harness::new(0xC13, 50);
    let design = bench.build(&p).expect("design builds");
    let result = harness.simulate(bench, &design);
    println!(
        "simulated {} with {p}: {:.0} cycles ({:.4} ms), {} off-chip transfers",
        bench.name(),
        result.cycles,
        result.seconds(&harness.platform) * 1e3,
        result.transfers
    );
    // Validate against the reference.
    let mut worst: f64 = 0.0;
    for (name, expected) in bench.reference() {
        if let Ok(got) = result.output(&name) {
            let scale = expected.iter().map(|v| v.abs()).fold(1e-30, f64::max);
            for (g, e) in got.iter().zip(&expected) {
                worst = worst.max((g - e).abs() / scale);
            }
        }
    }
    println!("worst relative output error vs reference: {worst:.2e}");
    if flag(rest, "--profile") {
        println!("\nper-controller cycles (heaviest first):");
        for e in result.profile().iter().take(12) {
            println!(
                "{:>14.0} cycles  {:>8} runs  {}",
                e.cycles, e.executions, e.label
            );
        }
    }
}

fn codegen(bench: &dyn dhdl_apps::Benchmark, rest: &[String]) {
    let p = params_from(bench, rest);
    let design = bench.build(&p).expect("design builds");
    println!("{}", maxj::generate(&design));
}

/// Simulate and write a VCD waveform of controller activity.
fn trace(bench: &dyn dhdl_apps::Benchmark, rest: &[String]) {
    let p = params_from(bench, rest);
    let harness = Harness::new(0xC15, 50);
    let design = bench.build(&p).expect("design builds");
    let result = harness.simulate(bench, &design);
    let vcd = result.trace().to_vcd(&design);
    let path = dhdl_bench::report::write_result(&format!("{}.vcd", bench.name()), &vcd);
    println!(
        "simulated {:.0} cycles; wrote {} ({} events)",
        result.cycles,
        path.display(),
        result.trace().len()
    );
}

/// Attribute estimated runtime and area to controllers and template
/// classes — the "balance compute with memory bandwidth" analysis of §I.
fn bottleneck(bench: &dyn dhdl_apps::Benchmark, rest: &[String]) {
    use dhdl_estimate::estimate_breakdown;
    use dhdl_synth::elaborate;
    let p = params_from(bench, rest);
    let harness = Harness::new(0xC14, 50);
    let design = bench.build(&p).expect("design builds");
    println!("estimated cycle attribution (heaviest controllers first):");
    for e in estimate_breakdown(&design, &harness.platform)
        .iter()
        .take(10)
    {
        println!(
            "{:>14.0} cycles  {:>10.0} runs x {:>10.0}  {}",
            e.total, e.executions, e.per_execution, e.label
        );
    }
    let net = elaborate(&design, &harness.platform.fpga);
    println!("\nraw area by template class (LUTs / regs / DSPs / BRAMs):");
    let rows = [
        ("primitives", net.breakdown.primitives),
        ("memories", net.breakdown.memories),
        ("control", net.breakdown.control),
        ("transfers", net.breakdown.transfers),
        ("delays", net.breakdown.delays),
    ];
    for (name, r) in rows {
        println!(
            "  {name:<11} {:>10.0} {:>10.0} {:>6.0} {:>6.0}",
            r.luts(),
            r.regs,
            r.dsps,
            r.brams
        );
    }
}
