//! Table II: the evaluation benchmarks and dataset sizes.

use dhdl_bench::report::{write_result, Table};

fn main() {
    let mut t = Table::new(&[
        "Benchmark",
        "Description",
        "Paper dataset",
        "Scaled dataset (this run)",
        "Design parameters",
    ]);
    for b in dhdl_apps::all() {
        let space = b.param_space();
        let params: Vec<String> = space
            .defs()
            .iter()
            .map(|d| format!("{} ({} values)", d.name, d.kind.legal_values().len()))
            .collect();
        t.row(&[
            b.name().to_string(),
            b.description().to_string(),
            b.paper_dataset().to_string(),
            b.dataset_desc(),
            params.join(", "),
        ]);
    }
    println!("Table II: evaluation benchmarks\n");
    println!("{}", t.render());
    let path = write_result("table2.csv", &t.to_csv());
    println!("wrote {}", path.display());
}
