//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **MetaPipe value** — best design with coarse-grained pipelining
//!    explored vs. all MetaPipe toggles forced off (Sequential only);
//! 2. **Hybrid estimator value** — ALM error of the hybrid (NN-corrected)
//!    estimator vs. the raw analytical estimate, against synthesis truth;
//! 3. **Pruning value** — size of the divisor-pruned legal space vs. the
//!    unpruned integer box, i.e. how much sampling the heuristics save.

use dhdl_bench::report::{pct, times, write_result, Table};
use dhdl_bench::Harness;
use dhdl_core::ParamKind;
use dhdl_estimate::{features, random_design, raw_estimate};
use dhdl_synth::{design_hash, elaborate, place_and_route};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let points = env_usize("DHDL_DSE_POINTS", 1_000);
    eprintln!("calibrating estimator...");
    let harness = Harness::new(0xAB1A, points);

    ablation_metapipe(&harness);
    ablation_hybrid(&harness);
    ablation_pruning();
}

/// 1: value of coarse-grained pipelining.
fn ablation_metapipe(harness: &Harness) {
    let mut t = Table::new(&[
        "Benchmark",
        "best cycles (MetaPipe explored)",
        "best cycles (Sequential only)",
        "MetaPipe advantage",
    ]);
    for bench in dhdl_apps::all() {
        let dse = harness.explore(bench.as_ref());
        let toggles: Vec<String> = bench
            .param_space()
            .defs()
            .iter()
            .filter(|d| matches!(d.kind, ParamKind::Toggle))
            .map(|d| d.name.clone())
            .collect();
        let best_any = dse.best().map(|p| p.cycles);
        let best_seq = dse
            .points
            .iter()
            .filter(|p| p.valid && toggles.iter().all(|n| p.params.get(n) == Some(0)))
            .map(|p| p.cycles)
            .fold(f64::INFINITY, f64::min);
        let (Some(any), seq) = (best_any, best_seq) else {
            continue;
        };
        let adv = if seq.is_finite() { seq / any } else { f64::NAN };
        t.row(&[
            bench.name().to_string(),
            format!("{any:.0}"),
            if seq.is_finite() {
                format!("{seq:.0}")
            } else {
                "(none sampled)".into()
            },
            if adv.is_finite() {
                times(adv)
            } else {
                "-".into()
            },
        ]);
    }
    println!("\nAblation 1: MetaPipe (coarse-grained pipelining) value\n");
    println!("{}", t.render());
    write_result("ablation_metapipe.csv", &t.to_csv());
}

/// 2: value of the learned correction in the hybrid area estimator.
fn ablation_hybrid(harness: &Harness) {
    let target = &harness.platform.fpga;
    let model = harness.estimator.area_model();
    let n = 60usize;
    let mut hybrid_err = 0.0f64;
    let mut raw_err = 0.0f64;
    for k in 0..n {
        // Held-out random designs (different seed stream from training).
        let design = random_design(0xE0_0000 + k as u64);
        let net = elaborate(&design, target);
        let truth = place_and_route(design_hash(&design), &net, target).area_report();
        let hybrid = model.estimate_net(&net);
        let raw = raw_estimate(&net, target);
        let _ = features(&net);
        hybrid_err += ((hybrid.alms - truth.alms) / truth.alms).abs();
        raw_err += ((raw.alms - truth.alms) / truth.alms).abs();
    }
    let mut t = Table::new(&["Estimator", "avg ALM error (held-out designs)"]);
    t.row(&[
        "hybrid (analytical + NN)".into(),
        pct(hybrid_err / n as f64),
    ]);
    t.row(&["raw analytical only".into(), pct(raw_err / n as f64)]);
    println!("\nAblation 2: hybrid estimation vs raw analytical ({n} held-out designs)\n");
    println!("{}", t.render());
    write_result("ablation_hybrid.csv", &t.to_csv());
}

/// 3: value of the divisor pruning heuristics.
fn ablation_pruning() {
    let mut t = Table::new(&[
        "Benchmark",
        "unpruned box size",
        "legal (pruned) size",
        "reduction",
    ]);
    for bench in dhdl_apps::all() {
        let space = bench.param_space();
        let mut unpruned: f64 = 1.0;
        let mut pruned: f64 = 1.0;
        for def in space.defs() {
            let legal = def.kind.legal_values().len() as f64;
            pruned *= legal;
            unpruned *= match def.kind {
                ParamKind::Tile { min, max, .. } => (max - min + 1) as f64,
                ParamKind::Par { max, .. } => max as f64,
                ParamKind::Toggle => 2.0,
                // Naive range: any device count 1..=max.
                ParamKind::Devices { max } => max as f64,
            };
        }
        t.row(&[
            bench.name().to_string(),
            format!("{unpruned:.3e}"),
            format!("{pruned:.0}"),
            format!("{:.0}x", unpruned / pruned),
        ]);
    }
    println!("\nAblation 3: legal-subspace pruning (§IV-C heuristics)\n");
    println!("{}", t.render());
    write_result("ablation_pruning.csv", &t.to_csv());
}
