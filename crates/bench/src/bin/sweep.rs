//! Parameter sensitivity sweep: hold a benchmark's parameters at their
//! defaults and vary one across its legal values, reporting estimated
//! cycles/area/power at each point — the one-dimensional slices of the
//! paper's Figure 5 discussion ("points along the same vertical bar share
//! the same inner loop parallelization factor").
//!
//! Usage: `sweep <benchmark> <param>`
//!
//! The pseudo-parameter `num_fpgas` sweeps the multi-FPGA partitioning
//! axis (powers of two up to `DHDL_DSE_NUM_FPGAS`, default 8): the
//! design is built at its defaults and re-estimated per device count
//! through the partitioning pass.

use dhdl_bench::report::{write_result, Table};
use dhdl_bench::Harness;
use dhdl_core::{ParamKind, NUM_FPGAS};

fn main() {
    dhdl_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(name), Some(param)) = (args.first(), args.get(1)) else {
        eprintln!("usage: sweep <benchmark> <param>");
        std::process::exit(2);
    };
    let Some(bench) = dhdl_apps::by_name(name) else {
        eprintln!("unknown benchmark `{name}`");
        std::process::exit(2);
    };
    eprintln!("calibrating estimator...");
    let harness = Harness::new(0x53EE, 100);
    let space = bench.param_space();
    let multi = param == NUM_FPGAS;
    let kind = if multi {
        ParamKind::Devices {
            max: u64::from(harness.num_fpgas.max(8)),
        }
    } else if let Some(def) = space.defs().iter().find(|d| d.name == *param) {
        def.kind.clone()
    } else {
        let names: Vec<&str> = space.defs().iter().map(|d| d.name.as_str()).collect();
        eprintln!("unknown parameter `{param}`; available: {names:?} (plus `{NUM_FPGAS}`)");
        std::process::exit(2);
    };
    let def = dhdl_core::ParamDef {
        name: param.clone(),
        kind,
    };
    let mut t = Table::new(&[
        param,
        "cycles",
        "ms @150MHz",
        "ALMs",
        "DSPs",
        "BRAMs",
        "W",
        "fits",
    ]);
    let mut evaluated = 0usize;
    let mut build_failed = 0usize;
    for value in def.kind.legal_values() {
        let mut p = bench.default_params();
        if !multi {
            // `num_fpgas` is not a construction parameter: the design is
            // built at its defaults and partitioned at estimation time.
            p.set(param, value);
        }
        let Ok(design) = bench.build(&p) else {
            build_failed += 1;
            t.row(&[
                value.to_string(),
                "(build failed)".into(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
            continue;
        };
        evaluated += 1;
        // Cached path: repeated sweeps answer from results/cache/.
        let est = if multi {
            harness
                .estimator
                .estimate_partitioned(&design, value.clamp(1, u64::from(u32::MAX)) as u32)
                .estimate
        } else {
            harness.estimate(&design)
        };
        t.row(&[
            value.to_string(),
            format!("{:.0}", est.cycles),
            format!("{:.4}", est.seconds(&harness.platform) * 1e3),
            format!("{:.0}", est.area.alms),
            format!("{:.0}", est.area.dsps),
            format!("{:.0}", est.area.brams),
            format!("{:.2}", est.watts(&harness.platform)),
            est.area.fits(&harness.platform.fpga).to_string(),
        ]);
    }
    println!(
        "\nSweep of `{param}` for {} (other parameters at defaults {})\n",
        bench.name(),
        bench.default_params()
    );
    println!("{}", t.render());
    harness.flush_cache();
    // Point-loss accounting, mirroring the resilient runner's counters.
    println!("sweep outcomes: {evaluated} evaluated, {build_failed} build-failed");
    if let Some(c) = harness.cache_stats() {
        println!(
            "estimate cache: {} hits / {} misses ({} entries)",
            c.hits, c.misses, c.entries
        );
    }
    let path = write_result(
        &format!("sweep_{}_{}.csv", bench.name(), param),
        &t.to_csv(),
    );
    println!("wrote {}", path.display());
    dhdl_obs::finish("sweep");
}
