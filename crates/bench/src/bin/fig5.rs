//! Figure 5: design-space exploration scatter plots.
//!
//! For every benchmark, samples the legal design space, estimates each
//! point, and emits the three panels of the paper's Figure 5 row (ALM,
//! DSP and BRAM utilization vs. log-cycles) as CSV plus an ASCII render of
//! the ALM panel, with Pareto-optimal designs highlighted. Ends with the
//! boundedness analysis of §V-C1 (which resource limits each benchmark's
//! Pareto front).

use dhdl_bench::report::{ascii_scatter, pct, results_dir, write_result, Table};
use dhdl_bench::Harness;
use dhdl_dse::{frontier_along, ResourceAxis, SweepStats};
use std::fmt::Write as _;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Scan a previous `BENCH_estimate.json` for its `"total_wall_secs"`
/// value (a flat string scan — the file is our own single-level JSON).
fn previous_total_wall_secs() -> Option<f64> {
    let text = std::fs::read_to_string(results_dir().join("BENCH_estimate.json")).ok()?;
    let tail = text.split("\"total_wall_secs\":").nth(1)?;
    tail.split([',', '}', '\n']).next()?.trim().parse().ok()
}

/// Emit the estimation-throughput benchmark artifact: per-benchmark
/// evaluated points, wall-clock seconds, points/sec and cache counters,
/// plus totals and the speedup over the previous run of this binary
/// (cold-then-warm runs surface the cache win here).
fn write_bench_json(per_bench: &[(String, SweepStats)], speedup_vs_previous: Option<f64>) {
    let total_wall: f64 = per_bench.iter().map(|(_, s)| s.elapsed_secs).sum();
    let total_eval: usize = per_bench.iter().map(|(_, s)| s.evaluated).sum();
    let (hits, misses) = per_bench.iter().fold((0u64, 0u64), |(h, m), (_, s)| {
        let c = s.cache.unwrap_or_default();
        (h + c.hits, m + c.misses)
    });
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, (name, s)) in per_bench.iter().enumerate() {
        let c = s.cache.unwrap_or_default();
        let _ = write!(
            json,
            "    {{\"name\": \"{name}\", \"evaluated\": {}, \"wall_secs\": {:.6}, \
             \"points_per_sec\": {:.1}, \"cache_hits\": {}, \"cache_misses\": {}}}",
            s.evaluated,
            s.elapsed_secs,
            s.points_per_sec(),
            c.hits,
            c.misses
        );
        json.push_str(if i + 1 < per_bench.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        json,
        "  ],\n  \"total_evaluated\": {total_eval},\n  \"total_wall_secs\": {total_wall:.6},\n  \
         \"points_per_sec\": {:.1},\n  \"cache_hits\": {hits},\n  \"cache_misses\": {misses},\n  \
         \"cache_hit_rate\": {hit_rate:.4},\n",
        if total_wall > 0.0 {
            total_eval as f64 / total_wall
        } else {
            0.0
        }
    );
    match speedup_vs_previous {
        Some(x) => {
            let _ = writeln!(json, "  \"speedup_vs_previous\": {x:.2}");
        }
        None => {
            let _ = writeln!(json, "  \"speedup_vs_previous\": null");
        }
    }
    json.push_str("}\n");
    let path = write_result("BENCH_estimate.json", &json);
    println!("wrote {}", path.display());
}

fn main() {
    dhdl_obs::init_from_env();
    // The paper samples up to 75,000 legal points per benchmark; default
    // lower here for quick runs (set DHDL_FIG5_POINTS=75000 to match).
    let points = env_usize("DHDL_FIG5_POINTS", 3_000);
    eprintln!("calibrating estimator...");
    let harness = Harness::new(0xF165, points);
    eprintln!("search strategy: {}", harness.dse.strategy.name());
    let target = &harness.platform.fpga;

    let mut bound_table = Table::new(&[
        "Benchmark",
        "space size",
        "evaluated",
        "valid",
        "pareto",
        "discards b/m/e",
        "binding resource on front",
        "best-design class",
        "paper's finding",
    ]);
    let paper_findings = [
        (
            "dotproduct",
            "memory-bound; MetaPipe cheaper than Sequential",
        ),
        (
            "outerprod",
            "BRAM + memory bound; no MetaPipe on loads/stores",
        ),
        ("gemm", "Pareto designs occupy almost all BRAM"),
        ("tpchq6", "memory-intensive; plateau with tile size"),
        ("blackscholes", "ALM bound (par 16 would be memory bound)"),
        ("gda", "compute bound; BRAM critical via banking"),
        ("kmeans", "ALM bound; BRAM banking under-utilization"),
    ];

    // Estimation throughput accounting for BENCH_estimate.json: compare
    // this run's total sweep wall-clock against the previous run's (a
    // warm results/cache/ makes the second run several times faster).
    let previous_wall = previous_total_wall_secs();
    let mut per_bench: Vec<(String, dhdl_dse::SweepStats)> = Vec::new();

    for bench in dhdl_apps::all() {
        eprintln!("exploring {} ({points} samples)...", bench.name());
        let dse = harness.explore(bench.as_ref());
        per_bench.push((bench.name().to_string(), dse.stats));
        // CSV: one row per point with all three panels' coordinates, the
        // (cycles, ALM) front highlighted across panels as in the paper,
        // plus the per-axis frontiers.
        let mut csv = String::from(
            "alm_frac,dsp_frac,bram_frac,cycles,valid,pareto,pareto_dsp,pareto_bram\n",
        );
        let pareto: std::collections::BTreeSet<usize> = dse.pareto.iter().copied().collect();
        let dsp_front: std::collections::BTreeSet<usize> = frontier_along(&dse, ResourceAxis::Dsps)
            .into_iter()
            .collect();
        let bram_front: std::collections::BTreeSet<usize> =
            frontier_along(&dse, ResourceAxis::Brams)
                .into_iter()
                .collect();
        let mut scatter = Vec::new();
        for (i, p) in dse.points.iter().enumerate() {
            let (a, d, b) = p.area.utilization(target);
            let class = if pareto.contains(&i) {
                2
            } else {
                u8::from(p.valid)
            };
            let _ = writeln!(
                csv,
                "{a:.4},{d:.4},{b:.4},{:.0},{},{},{},{}",
                p.cycles,
                u8::from(p.valid),
                u8::from(pareto.contains(&i)),
                u8::from(dsp_front.contains(&i)),
                u8::from(bram_front.contains(&i))
            );
            scatter.push((a, p.cycles, class));
        }
        let path = write_result(&format!("fig5_{}.csv", bench.name()), &csv);
        println!(
            "\n=== {} ({} pts, wrote {}) ===",
            bench.name(),
            dse.points.len(),
            path.display()
        );
        // Per-category outcome accounting: point loss is never silent.
        println!(
            "sweep outcomes: {}{}",
            dse.counts.summary(),
            if dse.truncated {
                " [TRUNCATED by deadline; resumable]"
            } else {
                ""
            }
        );
        println!("sweep throughput: {}", dse.stats.summary());
        println!("{}", ascii_scatter(&scatter, 64, 16));

        // Boundedness: which resource is closest to its capacity across
        // the Pareto front.
        let mut maxu = [0.0f64; 3];
        for &i in &dse.pareto {
            let (a, d, b) = dse.points[i].area.utilization(target);
            maxu[0] = maxu[0].max(a);
            maxu[1] = maxu[1].max(d);
            maxu[2] = maxu[2].max(b);
        }
        let names = ["ALM", "DSP", "BRAM"];
        let (bi, bu) = maxu
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("three resources");
        let valid = dse.points.iter().filter(|p| p.valid).count();
        let finding = paper_findings
            .iter()
            .find(|f| f.0 == bench.name())
            .map_or("", |f| f.1);
        // Classify the fastest valid design with the bottleneck analyzer.
        let class = dse
            .best()
            .and_then(|best| bench.build(&best.params).ok().map(|d| (d, best)))
            .map(|(design, best)| {
                let est = dhdl_estimate::Estimate {
                    cycles: best.cycles,
                    area: best.area,
                };
                dhdl_estimate::classify(&design, &est, &harness.platform).to_string()
            })
            .unwrap_or_default();
        bound_table.row(&[
            bench.name().to_string(),
            dse.space_size.to_string(),
            dse.points.len().to_string(),
            valid.to_string(),
            dse.pareto.len().to_string(),
            format!(
                "{}/{}/{}{}",
                dse.counts.build_failed,
                dse.counts.mem_cap,
                dse.counts.eval_failed,
                if dse.truncated { " (truncated)" } else { "" }
            ),
            format!("{} ({})", names[bi], pct(*bu)),
            class,
            finding.to_string(),
        ]);
    }
    println!("\nFigure 5 summary: boundedness of the Pareto front per benchmark\n");
    println!("{}", bound_table.render());
    let path = write_result("fig5_summary.csv", &bound_table.to_csv());
    println!("wrote {}", path.display());

    let total_wall: f64 = per_bench.iter().map(|(_, s)| s.elapsed_secs).sum();
    let speedup = previous_wall
        .filter(|&prev| total_wall > 0.0 && prev > 0.0)
        .map(|prev| prev / total_wall);
    if let Some(x) = speedup {
        println!("estimation wall-clock vs previous fig5 run: {x:.2}x");
    }
    write_bench_json(&per_bench, speedup);
    dhdl_obs::finish("fig5");
}
