//! Energy-efficiency extension: the paper's introduction motivates
//! accelerators with "orders of magnitude improvements in performance and
//! energy efficiency" (§I). This binary quantifies the energy side for
//! the best generated designs: FPGA power from the platform power model
//! over synthesized area, versus the 95 W TDP Xeon E5-2630 running the
//! modeled CPU time.

use dhdl_bench::report::{times, write_result, Table};
use dhdl_bench::Harness;
use dhdl_cpu::XeonModel;
use dhdl_synth::synthesize;

/// Thermal design power of the Xeon E5-2630 (watts).
const XEON_TDP_W: f64 = 95.0;

fn main() {
    let points = std::env::var("DHDL_DSE_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);
    eprintln!("calibrating estimator...");
    let harness = Harness::new(0xE6E6, points);
    let xeon = XeonModel::default();

    let mut t = Table::new(&[
        "Benchmark",
        "FPGA W",
        "FPGA mJ",
        "CPU W",
        "CPU mJ",
        "Energy advantage",
        "Perf advantage",
    ]);
    let mut csv = String::from("benchmark,fpga_w,fpga_j,cpu_w,cpu_j,energy_ratio\n");
    for bench in dhdl_apps::all() {
        eprintln!("exploring {} ...", bench.name());
        let dse = harness.explore(bench.as_ref());
        let best = dse.best().expect("valid design");
        let design = bench.build(&best.params).expect("builds");
        let sim = harness.simulate(bench.as_ref(), &design);
        let fpga_s = sim.seconds(&harness.platform);
        // Power priced over the *synthesized* (ground truth) area.
        let area = synthesize(&design, &harness.platform.fpga).area_report();
        let fpga_w = harness
            .platform
            .power
            .watts(&area, harness.platform.fpga.fabric_clock_hz);
        let fpga_j = fpga_w * fpga_s;
        let cpu_s = xeon.seconds(&bench.work());
        let cpu_j = XEON_TDP_W * cpu_s;
        t.row(&[
            bench.name().to_string(),
            format!("{fpga_w:.2}"),
            format!("{:.3}", fpga_j * 1e3),
            format!("{XEON_TDP_W:.0}"),
            format!("{:.3}", cpu_j * 1e3),
            times(cpu_j / fpga_j),
            times(cpu_s / fpga_s),
        ]);
        use std::fmt::Write as _;
        let _ = writeln!(
            csv,
            "{},{:.4},{:.6e},{:.1},{:.6e},{:.3}",
            bench.name(),
            fpga_w,
            fpga_j,
            XEON_TDP_W,
            cpu_j,
            cpu_j / fpga_j
        );
    }
    println!("\nEnergy efficiency of best generated designs vs the 6-core CPU\n");
    println!("{}", t.render());
    println!("(FPGA power from the Stratix V power model over synthesized area; CPU at TDP.)");
    let path = write_result("energy.csv", &csv);
    println!("wrote {}", path.display());
}
