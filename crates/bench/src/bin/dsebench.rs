//! Search-strategy comparison: the uniform random sweep at a full point
//! budget versus the surrogate-guided strategy at a fraction of it,
//! scored by Pareto hypervolume over (ln cycles, ln ALMs) with a shared
//! reference point per benchmark. Emits `results/BENCH_dse.json` with
//! hypervolume-vs-budget curves for both strategies across the fig5
//! benchmarks and exits non-zero when the surrogate falls below the
//! acceptance floor (≥90% of the random front's hypervolume at ≤10% of
//! its budget by default).
//!
//! Knobs: `DHDL_DSEBENCH_POINTS` (random budget per benchmark, default
//! 1500), `DHDL_DSEBENCH_FRACTION` (surrogate budget as a fraction of
//! it, default 0.1), `DHDL_DSEBENCH_FLOOR` (minimum acceptable
//! hypervolume ratio, default 0.9), `DHDL_DSEBENCH_BENCHES`
//! (comma-separated benchmark subset), `DHDL_DSEBENCH_RERUN=0` (skip
//! the byte-identical determinism re-run).

use std::fmt::Write as _;

use dhdl_apps::Benchmark;
use dhdl_bench::report::{write_result, Table};
use dhdl_bench::Harness;
use dhdl_dse::hypervolume::{hypervolume_of, reference_point};
use dhdl_dse::{DseResult, SearchStrategy, SurrogateConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Valid evaluated points in the scoring space: (ln cycles, ln ALMs),
/// the same transform the surrogate's acquisition uses.
fn ln_points(r: &DseResult) -> Vec<(f64, f64)> {
    r.points
        .iter()
        .filter(|p| p.valid)
        .map(|p| (p.cycles.max(1e-9).ln(), p.area.alms.max(1e-9).ln()))
        .collect()
}

/// One exploration run with an explicit budget and strategy on a clone
/// of the shared harness (same calibrated model, same estimate cache).
fn run(
    harness: &Harness,
    bench: &dyn Benchmark,
    points: usize,
    strategy: SearchStrategy,
) -> DseResult {
    let mut h = harness.clone();
    h.dse.max_points = points;
    h.dse.strategy = strategy;
    h.explore(bench)
}

fn main() {
    dhdl_obs::init_from_env();
    let budget = env_usize("DHDL_DSEBENCH_POINTS", 1_500);
    let fraction = env_f64("DHDL_DSEBENCH_FRACTION", 0.1).clamp(0.001, 1.0);
    let floor = env_f64("DHDL_DSEBENCH_FLOOR", 0.9);
    let rerun = std::env::var("DHDL_DSEBENCH_RERUN").map_or(true, |v| v != "0");
    let only: Vec<String> = std::env::var("DHDL_DSEBENCH_BENCHES")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect()
        })
        .unwrap_or_default();
    let sur_budget = ((budget as f64 * fraction).round() as usize).max(1);
    // Budget ticks for the surrogate's hypervolume-vs-budget curve; the
    // random curve gets the same ticks (a prefix of its evaluation
    // order) plus coarser ones out to the full budget.
    let sur_ticks: Vec<usize> = (1..=5)
        .map(|i| (sur_budget * i).div_ceil(5))
        .filter(|&k| k > 0)
        .collect();
    let mut rnd_ticks: Vec<usize> = sur_ticks.clone();
    rnd_ticks.extend((1..=4).map(|i| budget * i / 4));
    rnd_ticks.sort_unstable();
    rnd_ticks.dedup();

    eprintln!("calibrating estimator...");
    let harness = Harness::new(0xD5EB, budget);
    eprintln!(
        "comparing strategies: random@{budget} vs surrogate@{sur_budget} \
         ({}% of the budget), floor {floor}",
        (fraction * 100.0).round()
    );

    let surrogate = SearchStrategy::Surrogate(SurrogateConfig::default());
    let mut table = Table::new(&[
        "Benchmark",
        "hv random",
        "hv surrogate",
        "ratio",
        "surrogate front",
        "deterministic",
    ]);
    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut min_ratio = f64::INFINITY;

    for bench in dhdl_apps::all() {
        if !only.is_empty() && !only.iter().any(|n| n == bench.name()) {
            continue;
        }
        eprintln!("{}: random sweep ({budget} points)...", bench.name());
        let random = run(&harness, bench.as_ref(), budget, SearchStrategy::Random);
        eprintln!(
            "{}: surrogate search ({sur_budget} points)...",
            bench.name()
        );
        let sur = run(&harness, bench.as_ref(), sur_budget, surrogate.clone());
        let deterministic = if rerun {
            run(&harness, bench.as_ref(), sur_budget, surrogate.clone()) == sur
        } else {
            true
        };

        // One reference point per benchmark, over everything either
        // strategy evaluated, so both hypervolumes are comparable.
        let rnd_pts = ln_points(&random);
        let sur_pts = ln_points(&sur);
        let union: Vec<(f64, f64)> = rnd_pts.iter().chain(&sur_pts).copied().collect();
        let Some(reference) = reference_point(union.iter().copied(), 0.25) else {
            eprintln!("{}: no valid points from either strategy", bench.name());
            failures.push(format!("{}: no valid points", bench.name()));
            continue;
        };
        let hv_random = hypervolume_of(&rnd_pts, reference);
        let hv_sur = hypervolume_of(&sur_pts, reference);
        let ratio = if hv_random > 0.0 {
            hv_sur / hv_random
        } else {
            1.0
        };
        min_ratio = min_ratio.min(ratio);
        if ratio < floor {
            failures.push(format!(
                "{}: surrogate hypervolume ratio {ratio:.4} below the {floor} floor",
                bench.name()
            ));
        }
        if !deterministic {
            failures.push(format!("{}: surrogate re-run differed", bench.name()));
        }

        // Curves: the random sweep evaluates in sample order, so its
        // budget-k front is the first k evaluated points; the surrogate
        // result orders points by pool index, so each tick is its own
        // (deterministic, cache-warm) run at that budget.
        let random_curve: Vec<(usize, f64)> = rnd_ticks
            .iter()
            .map(|&k| {
                let pts = &rnd_pts[..k.min(rnd_pts.len())];
                (k, hypervolume_of(pts, reference))
            })
            .collect();
        let surrogate_curve: Vec<(usize, f64)> = sur_ticks
            .iter()
            .map(|&k| {
                let r = run(&harness, bench.as_ref(), k, surrogate.clone());
                (k, hypervolume_of(&ln_points(&r), reference))
            })
            .collect();

        table.row(&[
            bench.name().to_string(),
            format!("{hv_random:.4}"),
            format!("{hv_sur:.4}"),
            format!("{ratio:.4}"),
            format!("{} points", sur.pareto.len()),
            deterministic.to_string(),
        ]);
        rows.push((
            bench.name().to_string(),
            hv_random,
            hv_sur,
            ratio,
            deterministic,
            reference,
            random_curve,
            surrogate_curve,
        ));
    }
    harness.flush_cache();

    println!("{}", table.render());

    // BENCH_dse.json: deliberately free of wall-clock fields so a re-run
    // with the same seed and knobs is byte-identical.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"budget\": {budget},");
    let _ = writeln!(json, "  \"surrogate_budget\": {sur_budget},");
    let _ = writeln!(json, "  \"fraction\": {fraction},");
    let _ = writeln!(json, "  \"floor\": {floor},");
    let _ = writeln!(json, "  \"benchmarks\": [");
    for (i, (name, hv_r, hv_s, ratio, det, reference, rc, sc)) in rows.iter().enumerate() {
        let curve = |c: &[(usize, f64)]| {
            c.iter()
                .map(|(k, hv)| format!("[{k}, {hv:.9}]"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{name}\",");
        let _ = writeln!(json, "      \"hv_random\": {hv_r:.9},");
        let _ = writeln!(json, "      \"hv_surrogate\": {hv_s:.9},");
        let _ = writeln!(json, "      \"ratio\": {ratio:.9},");
        let _ = writeln!(json, "      \"deterministic\": {det},");
        let _ = writeln!(
            json,
            "      \"reference\": [{:.9}, {:.9}],",
            reference.0, reference.1
        );
        let _ = writeln!(json, "      \"random_curve\": [{}],", curve(rc));
        let _ = writeln!(json, "      \"surrogate_curve\": [{}]", curve(sc));
        let _ = writeln!(json, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    if min_ratio.is_finite() {
        let _ = writeln!(json, "  \"min_ratio\": {min_ratio:.9},");
    } else {
        let _ = writeln!(json, "  \"min_ratio\": null,");
    }
    let _ = writeln!(json, "  \"pass\": {}", failures.is_empty());
    json.push_str("}\n");
    let path = write_result("BENCH_dse.json", &json);
    println!("wrote {}", path.display());

    dhdl_obs::finish("dsebench");
    if !failures.is_empty() {
        eprintln!("dsebench FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    if min_ratio.is_finite() {
        println!(
            "surrogate holds {:.1}% of the random front's hypervolume at {}% of the budget",
            min_ratio * 100.0,
            (fraction * 100.0).round()
        );
    }
}
