//! `dnnbench` — the DNN workload frontier: conv2d + attention.
//!
//! For each DNN-shaped benchmark (a 3x3 line-buffer convolution and an
//! attention-shaped GEMM–softmax–GEMM pipeline) this runs the Figure-5
//! and Figure-6 pipelines side by side: explore the design space under
//! *both* search strategies (pure random and surrogate-guided), emit the
//! Pareto fronts, simulate the fastest design under both simulator
//! backends with a bit-exact cross-check, and compare modeled FPGA time
//! against the modeled Xeon CPU time. Table-III-style estimator errors
//! on Pareto picks are *reported* (these workloads sit outside the
//! calibration set by design), not gated.
//!
//! Everything written to `results/BENCH_dnn.json` is a deterministic
//! modeled quantity: the file is byte-identical across reruns and across
//! `DHDL_DSE_THREADS` settings. Wall-clock timing goes to stderr only.
//! `DHDL_DNN_POINTS` (default 2000) sets the DSE sample budget.

use std::fmt::Write as _;
use std::time::Instant;

use dhdl_bench::report::{pct, times, write_result, Table};
use dhdl_bench::Harness;
use dhdl_cpu::XeonModel;
use dhdl_dse::{DseResult, SearchStrategy, SurrogateConfig};
use dhdl_sim::{compile, simulate, Bindings, CompileError, SimResult};

/// Harness seed — must match `crates/bench/tests/dnn_golden.rs`.
const SEED: u64 = 0xD4D2;
/// Pareto picks per benchmark for the estimator-error report.
const PARETO_N: usize = 4;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One strategy's exploration outcome, reduced to deterministic values.
struct StrategyRun {
    strategy: &'static str,
    evaluated: usize,
    valid: usize,
    /// `(params, cycles, alm_frac, dsp_frac, bram_frac)` per front point.
    front: Vec<(String, f64, f64, f64, f64)>,
    best_params: String,
    best_cycles: f64,
}

/// One benchmark's full record for the JSON artifact.
struct BenchRecord {
    name: String,
    space_size: u128,
    strategies: Vec<StrategyRun>,
    sim_cycles: f64,
    bit_identical: Option<bool>,
    fpga_s: f64,
    cpu_s: f64,
    speedup: f64,
    bottleneck: String,
    /// Average `(alm, dsp, bram, runtime)` relative model errors.
    errors: [f64; 4],
}

fn run_strategy(
    harness: &Harness,
    bench: &dyn dhdl_apps::Benchmark,
    strategy: &'static str,
    dse: &DseResult,
) -> StrategyRun {
    let target = &harness.platform.fpga;
    let mut front: Vec<(String, f64, f64, f64, f64)> = dse
        .pareto
        .iter()
        .map(|&i| {
            let p = &dse.points[i];
            let (a, d, b) = p.area.utilization(target);
            (p.params.to_string(), p.cycles, a, d, b)
        })
        .collect();
    front.sort_by(|x, y| x.1.total_cmp(&y.1).then_with(|| x.0.cmp(&y.0)));
    let best = dse
        .best()
        .unwrap_or_else(|| panic!("{}: no valid design found", bench.name()));
    let mut csv = String::from("params,cycles,alm_frac,dsp_frac,bram_frac\n");
    for (p, c, a, d, b) in &front {
        let _ = writeln!(csv, "\"{p}\",{c:.0},{a:.4},{d:.4},{b:.4}");
    }
    let path = write_result(&format!("dnn_front_{}_{strategy}.csv", bench.name()), &csv);
    println!(
        "  {strategy}: {} evaluated, {} on front, best {:.0} cycles (wrote {})",
        dse.counts.evaluated,
        front.len(),
        best.cycles,
        path.display()
    );
    StrategyRun {
        strategy,
        evaluated: dse.counts.evaluated,
        valid: dse.points.iter().filter(|p| p.valid).count(),
        front,
        best_params: best.params.to_string(),
        best_cycles: best.cycles,
    }
}

/// Simulate `design` under both backends and bit-compare; returns the
/// interpreter result plus `Some(identical)` when the tape backend
/// supports the design (`None` on `CompileError::Unsupported`).
fn cross_simulate(
    harness: &Harness,
    bench: &dyn dhdl_apps::Benchmark,
    design: &dhdl_core::Design,
) -> (SimResult, Option<bool>) {
    let mut bindings = Bindings::new();
    for (name, data) in bench.inputs() {
        bindings = bindings.bind(&name, data);
    }
    let interp = simulate(design, &harness.platform, &bindings)
        .unwrap_or_else(|e| panic!("{}: interpreter failed: {e}", bench.name()));
    let identical = match compile(design, &harness.platform) {
        Ok(compiled) => {
            let tape = compiled
                .run(&bindings)
                .unwrap_or_else(|e| panic!("{}: tape backend failed: {e}", bench.name()));
            match interp.bit_diff(&tape) {
                None => Some(true),
                Some(diff) => {
                    println!("  BACKEND MISMATCH: {diff}");
                    Some(false)
                }
            }
        }
        Err(CompileError::Unsupported(why)) => {
            eprintln!("{}: tape backend unsupported ({why})", bench.name());
            None
        }
    };
    (interp, identical)
}

fn write_json(points: usize, records: &[BenchRecord], mean_errors: [f64; 4]) {
    let mut json = String::new();
    let _ = writeln!(json, "{{\n  \"seed\": {SEED},\n  \"points\": {points},");
    json.push_str("  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"space_size\": {},",
            r.name, r.space_size
        );
        json.push_str("     \"strategies\": [\n");
        for (j, s) in r.strategies.iter().enumerate() {
            let _ = write!(
                json,
                "       {{\"strategy\": \"{}\", \"evaluated\": {}, \"valid\": {}, \
                 \"best_params\": \"{}\", \"best_cycles\": {:.0}, \"front\": [",
                s.strategy, s.evaluated, s.valid, s.best_params, s.best_cycles
            );
            for (k, (p, c, a, d, b)) in s.front.iter().enumerate() {
                let _ = write!(
                    json,
                    "{}{{\"params\": \"{p}\", \"cycles\": {c:.0}, \"alm\": {a:.4}, \
                     \"dsp\": {d:.4}, \"bram\": {b:.4}}}",
                    if k > 0 { ", " } else { "" }
                );
            }
            let _ = writeln!(
                json,
                "]}}{}",
                if j + 1 < r.strategies.len() { "," } else { "" }
            );
        }
        json.push_str("     ],\n");
        let bitid = r
            .bit_identical
            .map_or("null".to_string(), |b| b.to_string());
        let _ = writeln!(
            json,
            "     \"sim_cycles\": {:.0}, \"backends_bit_identical\": {bitid},",
            r.sim_cycles
        );
        let _ = writeln!(
            json,
            "     \"fpga_ms\": {:.4}, \"cpu_model_ms\": {:.4}, \"speedup\": {:.3},",
            r.fpga_s * 1e3,
            r.cpu_s * 1e3,
            r.speedup
        );
        let _ = writeln!(json, "     \"bottleneck\": \"{}\",", r.bottleneck);
        let _ = writeln!(
            json,
            "     \"model_errors\": {{\"alm\": {:.4}, \"dsp\": {:.4}, \"bram\": {:.4}, \
             \"runtime\": {:.4}}}}}{}",
            r.errors[0],
            r.errors[1],
            r.errors[2],
            r.errors[3],
            if i + 1 < records.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"mean_model_errors\": {{\"alm\": {:.4}, \"dsp\": {:.4}, \"bram\": {:.4}, \
         \"runtime\": {:.4}}}\n}}",
        mean_errors[0], mean_errors[1], mean_errors[2], mean_errors[3]
    );
    let path = write_result("BENCH_dnn.json", &json);
    println!("wrote {}", path.display());
}

fn main() {
    dhdl_obs::init_from_env();
    let points = env_usize("DHDL_DNN_POINTS", 2_000);
    let start = Instant::now();
    eprintln!("calibrating estimator...");
    let mut harness = Harness::new(SEED, points);
    let xeon = XeonModel::default();
    let strategies: [(&'static str, SearchStrategy); 2] = [
        ("random", SearchStrategy::Random),
        (
            "surrogate",
            SearchStrategy::Surrogate(SurrogateConfig::default()),
        ),
    ];

    let mut records = Vec::new();
    for bench in dhdl_apps::dnn() {
        println!("=== {} ({points} samples/strategy) ===", bench.name());
        let mut runs = Vec::new();
        let mut random_dse = None;
        let mut space_size = 0;
        for (name, strategy) in &strategies {
            eprintln!("exploring {} [{name}]...", bench.name());
            harness.dse.strategy = strategy.clone();
            let dse = harness.explore(bench.as_ref());
            eprintln!("  {}", dse.stats.summary());
            space_size = dse.space_size;
            runs.push(run_strategy(&harness, bench.as_ref(), name, &dse));
            if *name == "random" {
                random_dse = Some(dse);
            }
        }
        let dse = random_dse.expect("random strategy ran");

        // Fastest random-front design: simulate under both backends and
        // compare against the modeled CPU time (fig6 pipeline).
        let best = dse
            .best()
            .unwrap_or_else(|| panic!("{}: no valid design found", bench.name()));
        let design = bench.build(&best.params).expect("best point builds");
        eprintln!("simulating best design ({})...", best.params);
        let (sim, bit_identical) = cross_simulate(&harness, bench.as_ref(), &design);
        let fpga_s = sim.seconds(&harness.platform);
        let cpu_s = xeon.seconds(&bench.work());
        let est = dhdl_estimate::Estimate {
            cycles: best.cycles,
            area: best.area,
        };
        let bottleneck = dhdl_estimate::classify(&design, &est, &harness.platform).to_string();

        // Table-III-style model errors on a spread of Pareto picks.
        let picks = harness.pareto_sample(&dse, PARETO_N);
        let mut errors = [0.0f64; 4];
        for p in &picks {
            let eval = harness.evaluate(bench.as_ref(), p);
            let (a, d, b, r) = eval.errors();
            errors[0] += a;
            errors[1] += d;
            errors[2] += b;
            errors[3] += r;
        }
        for e in &mut errors {
            *e /= picks.len().max(1) as f64;
        }

        records.push(BenchRecord {
            name: bench.name().to_string(),
            space_size,
            strategies: runs,
            sim_cycles: sim.cycles,
            bit_identical,
            fpga_s,
            cpu_s,
            speedup: cpu_s / fpga_s,
            bottleneck,
            errors,
        });
    }

    let mut t = Table::new(&[
        "Benchmark",
        "space",
        "best params (random)",
        "sim cycles",
        "FPGA (ms)",
        "CPU model (ms)",
        "Speedup",
        "bit-identical",
        "bottleneck",
        "err ALM/DSP/BRAM/runtime",
    ]);
    let mut mean = [0.0f64; 4];
    for r in &records {
        for (m, e) in mean.iter_mut().zip(r.errors) {
            *m += e / records.len() as f64;
        }
        t.row(&[
            r.name.clone(),
            r.space_size.to_string(),
            r.strategies[0].best_params.clone(),
            format!("{:.0}", r.sim_cycles),
            format!("{:.3}", r.fpga_s * 1e3),
            format!("{:.3}", r.cpu_s * 1e3),
            times(r.speedup),
            r.bit_identical.map_or("n/a".to_string(), |b| b.to_string()),
            r.bottleneck.clone(),
            format!(
                "{}/{}/{}/{}",
                pct(r.errors[0]),
                pct(r.errors[1]),
                pct(r.errors[2]),
                pct(r.errors[3])
            ),
        ]);
    }
    println!("\nDNN workload frontier: Pareto + speedup summary\n");
    println!("{}", t.render());
    println!(
        "mean model errors: ALM {} / DSP {} / BRAM {} / runtime {}",
        pct(mean[0]),
        pct(mean[1]),
        pct(mean[2]),
        pct(mean[3])
    );
    write_json(points, &records, mean);
    eprintln!("dnnbench: done in {:.1}s", start.elapsed().as_secs_f64());
    dhdl_obs::finish("dnnbench");
}
