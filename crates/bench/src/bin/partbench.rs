//! `partbench` — fronts that need more than one chip.
//!
//! The paper's DSE is bounded by what fits on one Stratix V: tilings
//! whose working set exceeds single-chip BRAM are estimated, marked
//! infeasible, and never reach a Pareto front. This driver sweeps
//! over-capacity gemm/gda/conv2d tilings three times — single-chip
//! (K=1), and with the multi-FPGA partitioning axis opened to K=2 and
//! K=4 — and reports the *rescued* configurations: points on a K>1
//! Pareto front whose construction parameters do not fit one device
//! unpartitioned.
//!
//! Everything written to `results/BENCH_part.json` is a deterministic
//! modeled quantity: the file is byte-identical across reruns and
//! across `DHDL_DSE_THREADS` settings. Wall-clock timing goes to
//! stderr only. `DHDL_PART_POINTS` (default 800) sets the DSE sample
//! budget per sweep.
//!
//! Exits nonzero unless at least one configuration is rescued at K=2
//! *and* at K=4 — the acceptance gate for the partitioning axis.

use std::fmt::Write as _;
use std::time::Instant;

use dhdl_apps::{Benchmark, Conv2d, Gda, Gemm};
use dhdl_bench::report::{pct, write_result, Table};
use dhdl_bench::Harness;
use dhdl_core::{ParamSpace, NUM_FPGAS};
use dhdl_dse::{explore, DseOptions, DseResult};

/// Harness seed — shared with the part-smoke CI job.
const SEED: u64 = 0x9A27;

/// Device counts swept after the single-chip baseline.
const DEVICE_SWEEPS: [u32; 2] = [2, 4];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One benchmark instance sized past single-chip capacity, with a
/// tiling space that reaches the over-capacity corner (the stock
/// `param_space` caps tiles well inside one device, so the interesting
/// region is opened explicitly here).
struct Scenario {
    bench: Box<dyn Benchmark>,
    space: ParamSpace,
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();

    // 1024^3 gemm: three 512^2 f32 tiles sit exactly at the 8 Mbit
    // per-buffer cap and together overflow one Stratix V.
    let gemm = Gemm::new(1024, 1024, 1024);
    let mut s = ParamSpace::new();
    s.tile("tm", gemm.m, 128, 512);
    s.tile("tn", gemm.n, 128, 512);
    s.tile("tk", gemm.k, 128, 512);
    s.par("p", 48, 48);
    s.toggle("mp1");
    s.toggle("mp2");
    out.push(Scenario {
        bench: Box::new(gemm),
        space: s,
    });

    // GDA at D=256: the sigma accumulator is D^2 and the row tile is
    // rts x D, so large `rts` blows the single-chip BRAM budget.
    let gda = Gda::new(16_384, 256);
    let mut s = ParamSpace::new();
    s.tile("rts", gda.r, 256, 1024);
    s.par("p1", gda.d, 16);
    s.par("p2", gda.d, 16);
    s.par("m2p", 4, 4);
    s.par("m1p", 4, 4);
    s.toggle("m1");
    s.toggle("m2");
    out.push(Scenario {
        bench: Box::new(gda),
        space: s,
    });

    // A 514x514 image with 64 output channels: the channel-parallel
    // controller replicates the window pipe up to 64 ways, and the
    // banked cout x th x wout accumulator overflows one device at high
    // `pc` — the replica cut splits the channel lanes across boards.
    let conv = Conv2d::new(514, 64);
    let mut s = ParamSpace::new();
    s.tile("th", conv.out_size(), 2, 4);
    s.par("pc", conv.cout, 64);
    s.par("pj", conv.out_size(), 16);
    s.toggle("mp");
    s.toggle("mpc");
    out.push(Scenario {
        bench: Box::new(conv),
        space: s,
    });

    out
}

/// One sweep's outcome reduced to deterministic values.
struct Run {
    k: u32,
    evaluated: usize,
    valid: usize,
    infeasible: usize,
    front_size: usize,
    /// Best (min-cycles) valid point, if any: `(params, cycles)`.
    best: Option<(String, f64)>,
    /// Front points rescued by partitioning: on this front with
    /// `num_fpgas > 1` and unpartitioned-infeasible on one device.
    rescued: Vec<Rescue>,
    /// All configurations partitioning made feasible, on the front or
    /// not: valid at `num_fpgas > 1`, infeasible on one device. A
    /// nonzero count with an empty `rescued` list means the cut buys
    /// capacity but every rescued point is dominated by a smaller
    /// single-chip design (the honest outcome for workloads whose
    /// fastest tilings already fit).
    rescued_total: usize,
}

/// A configuration partitioning made feasible, with the estimator's
/// view of why.
struct Rescue {
    params: String,
    devices: u32,
    devices_used: u32,
    cycles: f64,
    link_cycles: f64,
    /// Worst per-device utilization after the cut (ALM, DSP, BRAM).
    part_util: (f64, f64, f64),
    /// Unpartitioned single-device utilization (the infeasible one).
    whole_util: (f64, f64, f64),
}

fn sweep(harness: &Harness, sc: &Scenario, k: u32, points: usize) -> DseResult {
    let mut space = sc.space.clone();
    if k > 1 {
        space.devices(u64::from(k));
    }
    let opts = DseOptions {
        max_points: points,
        seed: SEED,
        threads: harness.dse.threads,
        ..DseOptions::default()
    };
    explore(|p| sc.bench.build(p), &space, &harness.estimator, &opts)
}

fn analyze(harness: &Harness, sc: &Scenario, k: u32, dse: &DseResult) -> Run {
    let target = &harness.platform.fpga;
    let on_front: std::collections::BTreeSet<usize> = dse.pareto.iter().copied().collect();
    let mut rescued = Vec::new();
    let mut rescued_total = 0usize;
    for (i, p) in dse.points.iter().enumerate() {
        let devices = p.params.get(NUM_FPGAS).unwrap_or(1) as u32;
        if !p.valid || devices <= 1 {
            continue;
        }
        // Re-ask the estimator about the same construction parameters
        // on one device; metaprograms ignore `num_fpgas`, so this is
        // exactly the K=1 view of the point.
        let design = match sc.bench.build(&p.params) {
            Ok(d) => d,
            Err(_) => continue,
        };
        let whole = harness.estimator.estimate(&design);
        if whole.area.fits(target) {
            continue; // feasible on one chip; partitioning was optional
        }
        rescued_total += 1;
        if !on_front.contains(&i) {
            continue;
        }
        let pe = harness.estimator.estimate_partitioned(&design, devices);
        rescued.push(Rescue {
            params: p.params.to_string(),
            devices,
            devices_used: pe.devices_used,
            cycles: pe.estimate.cycles,
            link_cycles: pe.link_cycles,
            part_util: pe.estimate.area.utilization(target),
            whole_util: whole.area.utilization(target),
        });
    }
    let valid = dse.points.iter().filter(|p| p.valid).count();
    let best = dse.best().map(|p| (p.params.to_string(), p.cycles));
    Run {
        k,
        evaluated: dse.counts.evaluated,
        valid,
        infeasible: dse.points.len() - valid,
        front_size: dse.pareto.len(),
        best,
        rescued,
        rescued_total,
    }
}

fn util_json(u: (f64, f64, f64)) -> String {
    format!(
        "{{\"alm\": {:.4}, \"dsp\": {:.4}, \"bram\": {:.4}}}",
        u.0, u.1, u.2
    )
}

fn write_json(points: usize, records: &[(String, String, u128, Vec<Run>)]) {
    let mut json = String::new();
    let _ = writeln!(json, "{{\n  \"seed\": {SEED},\n  \"points\": {points},");
    json.push_str("  \"scenarios\": [\n");
    for (i, (name, dataset, space_size, runs)) in records.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"dataset\": \"{dataset}\", \"space_size\": {space_size},"
        );
        json.push_str("     \"runs\": [\n");
        for (j, r) in runs.iter().enumerate() {
            let best = r.best.as_ref().map_or("null".to_string(), |(p, c)| {
                format!("{{\"params\": \"{p}\", \"cycles\": {c:.0}}}")
            });
            let _ = write!(
                json,
                "       {{\"k\": {}, \"evaluated\": {}, \"valid\": {}, \"infeasible\": {}, \
                 \"front_size\": {}, \"best\": {best}, \"rescued_total\": {}, \"rescued\": [",
                r.k, r.evaluated, r.valid, r.infeasible, r.front_size, r.rescued_total
            );
            for (m, resc) in r.rescued.iter().enumerate() {
                let _ = write!(
                    json,
                    "{}{{\"params\": \"{}\", \"devices\": {}, \"devices_used\": {}, \
                     \"cycles\": {:.0}, \"link_cycles\": {:.0}, \
                     \"per_device_util\": {}, \"single_device_util\": {}}}",
                    if m > 0 { ", " } else { "" },
                    resc.params,
                    resc.devices,
                    resc.devices_used,
                    resc.cycles,
                    resc.link_cycles,
                    util_json(resc.part_util),
                    util_json(resc.whole_util),
                );
            }
            let _ = writeln!(json, "]}}{}", if j + 1 < runs.len() { "," } else { "" });
        }
        let _ = writeln!(
            json,
            "     ]}}{}",
            if i + 1 < records.len() { "," } else { "" }
        );
    }
    let total: usize = records
        .iter()
        .flat_map(|(_, _, _, runs)| runs.iter())
        .map(|r| r.rescued.len())
        .sum();
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"total_rescued\": {total}\n}}");
    let path = write_result("BENCH_part.json", &json);
    println!("wrote {}", path.display());
}

fn main() {
    dhdl_obs::init_from_env();
    let points = env_usize("DHDL_PART_POINTS", 800);
    let start = Instant::now();
    eprintln!("calibrating estimator...");
    let harness = Harness::new(SEED, points);

    let mut records = Vec::new();
    for sc in scenarios() {
        println!(
            "=== {} [{}] ({points} samples/sweep) ===",
            sc.bench.name(),
            sc.bench.dataset_desc()
        );
        let mut runs = Vec::new();
        let mut space_size = 0u128;
        for k in std::iter::once(1).chain(DEVICE_SWEEPS) {
            eprintln!("sweeping {} at K={k}...", sc.bench.name());
            let dse = sweep(&harness, &sc, k, points);
            eprintln!("  {} ({})", dse.stats.summary(), dse.counts.summary());
            if k == 1 {
                space_size = dse.space_size;
            }
            let run = analyze(&harness, &sc, k, &dse);
            println!(
                "  K={k}: {} evaluated, {} valid / {} infeasible, {} on front, \
                 rescued {} on front / {} anywhere",
                run.evaluated,
                run.valid,
                run.infeasible,
                run.front_size,
                run.rescued.len(),
                run.rescued_total
            );
            runs.push(run);
        }
        records.push((
            sc.bench.name().to_string(),
            sc.bench.dataset_desc(),
            space_size,
            runs,
        ));
    }

    let mut t = Table::new(&[
        "Scenario",
        "K",
        "valid/infeasible",
        "front",
        "rescued front/any",
        "best cycles",
        "worst link overhead",
    ]);
    for (name, _, _, runs) in &records {
        for r in runs {
            let link = r
                .rescued
                .iter()
                .map(|resc| resc.link_cycles / resc.cycles)
                .fold(0.0f64, f64::max);
            t.row(&[
                name.clone(),
                r.k.to_string(),
                format!("{}/{}", r.valid, r.infeasible),
                r.front_size.to_string(),
                format!("{}/{}", r.rescued.len(), r.rescued_total),
                r.best
                    .as_ref()
                    .map_or("-".to_string(), |(_, c)| format!("{c:.0}")),
                if r.rescued.is_empty() {
                    "-".to_string()
                } else {
                    pct(link)
                },
            ]);
        }
    }
    println!("\nMulti-FPGA partitioning: feasibility fronts\n");
    println!("{}", t.render());

    write_json(points, &records);
    eprintln!("partbench: done in {:.1}s", start.elapsed().as_secs_f64());
    dhdl_obs::finish("partbench");

    // The acceptance gate: partitioning must rescue at least one
    // over-capacity configuration at each opened device count.
    for k in DEVICE_SWEEPS {
        let rescued: usize = records
            .iter()
            .flat_map(|(_, _, _, runs)| runs.iter())
            .filter(|r| r.k == k)
            .map(|r| r.rescued.len())
            .sum();
        if rescued == 0 {
            eprintln!("FAIL: no configuration rescued at K={k}");
            std::process::exit(1);
        }
    }
}
