//! Optimized multi-threaded CPU implementations of the benchmark suite.
//!
//! These play the role of the paper's CPU baselines ("generated from
//! OptiML ... high performance, multi-threaded C++ comparable to, or
//! better than, manually optimized code", §V-D): chunked data-parallel
//! kernels over `std::thread::scope`, with a cache-blocked gemm standing
//! in for OpenBLAS. They are used both to validate the simulator's
//! functional outputs at full scale and to measure real host kernel times
//! (reported alongside the modeled Xeon times in the Figure 6 harness).

use std::time::{Duration, Instant};

use dhdl_apps::{Arrays, Benchmark};

/// Result of running a CPU baseline: outputs plus measured wall time.
#[derive(Debug, Clone)]
pub struct CpuRun {
    /// Output arrays keyed by the benchmark's off-chip names.
    pub outputs: Arrays,
    /// Measured kernel time (core computation only, excluding input
    /// generation), averaged over `runs`.
    pub elapsed: Duration,
    /// Number of timed repetitions averaged.
    pub runs: u32,
}

/// Number of worker threads (the paper's CPU runs 6 threads).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(6)
}

/// Split `n` items into per-thread ranges.
fn chunks(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1);
    let per = n.div_ceil(threads);
    (0..threads)
        .map(|t| (t * per, ((t + 1) * per).min(n)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Parallel map-reduce over index chunks.
fn par_reduce<R: Send>(n: usize, threads: usize, f: impl Fn(usize, usize) -> R + Sync) -> Vec<R> {
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks(n, threads)
            .into_iter()
            .map(|(lo, hi)| s.spawn(move || f(lo, hi)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// Run the CPU baseline for `bench`, timing `runs` repetitions.
///
/// # Panics
///
/// Panics if `bench` is not one of the known benchmark kernels.
pub fn run(bench: &dyn Benchmark, runs: u32) -> CpuRun {
    let inputs = bench.inputs();
    let threads = default_threads();
    let runs = runs.max(1);
    let mut outputs = Arrays::new();
    let start = Instant::now();
    for _ in 0..runs {
        outputs = dispatch(bench, &inputs, threads);
    }
    let elapsed = start.elapsed() / runs;
    CpuRun {
        outputs,
        elapsed,
        runs,
    }
}

fn dispatch(bench: &dyn Benchmark, inputs: &Arrays, threads: usize) -> Arrays {
    match bench.name() {
        "dotproduct" => dotproduct(inputs, threads),
        "outerprod" => outerprod(inputs, threads),
        "gemm" => gemm(inputs, threads),
        "tpchq6" => tpchq6(inputs, threads),
        "blackscholes" => blackscholes(inputs, threads),
        "gda" => gda(inputs, threads),
        "kmeans" => kmeans(inputs, threads),
        "saxpy" => saxpy(inputs, threads),
        "conv2d" => conv2d(inputs, threads),
        "attention" => attention(inputs, threads),
        other => panic!("no CPU kernel for benchmark `{other}`"),
    }
}

fn dotproduct(inputs: &Arrays, threads: usize) -> Arrays {
    let (a, b) = (&inputs["a"], &inputs["b"]);
    let partials = par_reduce(a.len(), threads, |lo, hi| {
        a[lo..hi]
            .iter()
            .zip(&b[lo..hi])
            .map(|(x, y)| x * y)
            .sum::<f64>()
    });
    let mut m = Arrays::new();
    m.insert("out".into(), vec![partials.iter().sum()]);
    m
}

fn saxpy(inputs: &Arrays, threads: usize) -> Arrays {
    let (x, y) = (&inputs["x"], &inputs["y"]);
    let a = 2.5f64; // default scalar; kernels are shape-validated via sim
    let rows = par_reduce(x.len(), threads, |lo, hi| {
        x[lo..hi]
            .iter()
            .zip(&y[lo..hi])
            .map(|(xi, yi)| a * xi + yi)
            .collect::<Vec<f64>>()
    });
    let mut m = Arrays::new();
    m.insert("out".into(), rows.concat());
    m
}

fn outerprod(inputs: &Arrays, threads: usize) -> Arrays {
    let (v1, v2) = (&inputs["v1"], &inputs["v2"]);
    let n = v1.len();
    let rows = par_reduce(n, threads, |lo, hi| {
        let mut out = Vec::with_capacity((hi - lo) * n);
        for &a in &v1[lo..hi] {
            out.extend(v2.iter().map(|&b| (a * b) as f32 as f64));
        }
        out
    });
    let mut m = Arrays::new();
    m.insert("out".into(), rows.concat());
    m
}

/// Cache-blocked matrix multiply (the OpenBLAS stand-in).
fn gemm(inputs: &Arrays, threads: usize) -> Arrays {
    let (a, b) = (&inputs["a"], &inputs["b"]);
    // Infer dimensions from a square-ish layout: the harness always uses
    // M = N = K, but recover K from the arrays to stay general.
    let mk = a.len();
    let kn = b.len();
    // Solve M*K = mk, K*N = kn with M = N: K = sqrt(mk*kn)/M ... assume
    // square: M = N = K = sqrt(mk).
    let k = (mk as f64).sqrt().round() as usize;
    let m = mk / k;
    let n = kn / k;
    const BLOCK: usize = 32;
    let rows = par_reduce(m, threads, |lo, hi| {
        let mut c = vec![0.0f64; (hi - lo) * n];
        for kk0 in (0..k).step_by(BLOCK) {
            let kk1 = (kk0 + BLOCK).min(k);
            for i in lo..hi {
                for kk in kk0..kk1 {
                    let av = a[i * k + kk];
                    let row = &mut c[(i - lo) * n..(i - lo + 1) * n];
                    let brow = &b[kk * n..(kk + 1) * n];
                    for (cv, bv) in row.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
        }
        c
    });
    let mut out = Arrays::new();
    out.insert("c".into(), rows.concat());
    out
}

fn tpchq6(inputs: &Arrays, threads: usize) -> Arrays {
    let price = &inputs["price"];
    let disc = &inputs["discount"];
    let qty = &inputs["quantity"];
    let date = &inputs["shipdate"];
    let partials = par_reduce(price.len(), threads, |lo, hi| {
        let mut rev = 0.0f64;
        for i in lo..hi {
            if date[i] >= 8766.0
                && date[i] < 9131.0
                && disc[i] >= 0.05
                && disc[i] <= 0.07
                && qty[i] < 24.0
            {
                rev += price[i] * disc[i];
            }
        }
        rev
    });
    let mut m = Arrays::new();
    m.insert("revenue".into(), vec![partials.iter().sum()]);
    m
}

fn blackscholes(inputs: &Arrays, threads: usize) -> Arrays {
    use dhdl_apps::BlackScholes;
    let s = &inputs["sptprice"];
    let k = &inputs["strike"];
    let r = &inputs["rate"];
    let v = &inputs["volatility"];
    let t = &inputs["otime"];
    let y = &inputs["otype"];
    let rows = par_reduce(s.len(), threads, |lo, hi| {
        (lo..hi)
            .map(|i| BlackScholes::price_one(s[i], k[i], r[i], v[i], t[i], y[i] != 0.0))
            .collect::<Vec<f64>>()
    });
    let mut m = Arrays::new();
    m.insert("price".into(), rows.concat());
    m
}

fn gda(inputs: &Arrays, threads: usize) -> Arrays {
    let x = &inputs["x"];
    let y = &inputs["y"];
    let mu0 = &inputs["mu0"];
    let mu1 = &inputs["mu1"];
    let d = mu0.len();
    let r = y.len();
    let partials = par_reduce(r, threads, |lo, hi| {
        let mut sigma = vec![0.0f64; d * d];
        let mut sub = vec![0.0f64; d];
        for row in lo..hi {
            for c in 0..d {
                let mu = if y[row] != 0.0 { mu1[c] } else { mu0[c] };
                sub[c] = x[row * d + c] - mu;
            }
            for i in 0..d {
                let si = sub[i];
                for j in 0..d {
                    sigma[i * d + j] += si * sub[j];
                }
            }
        }
        sigma
    });
    let mut sigma = vec![0.0f64; d * d];
    for p in partials {
        for (acc, v) in sigma.iter_mut().zip(p) {
            *acc += v;
        }
    }
    let mut m = Arrays::new();
    m.insert("sigma".into(), sigma);
    m
}

fn kmeans(inputs: &Arrays, threads: usize) -> Arrays {
    let x = &inputs["points"];
    let cents = &inputs["centroids"];
    let kd = cents.len();
    // k is fixed at 8 in the suite; recover d from the layout.
    let k = 8.min(kd);
    let d = kd / k;
    let n = x.len() / d;
    let partials = par_reduce(n, threads, |lo, hi| {
        let mut sums = vec![0.0f64; k * (d + 1)];
        for p in lo..hi {
            let mut best = 0usize;
            let mut best_dist = f64::INFINITY;
            for c in 0..k {
                let mut dist = 0.0;
                for j in 0..d {
                    let diff = x[p * d + j] - cents[c * d + j];
                    dist += diff * diff;
                }
                if dist < best_dist {
                    best_dist = dist;
                    best = c;
                }
            }
            for j in 0..d {
                sums[best * (d + 1) + j] += x[p * d + j];
            }
            sums[best * (d + 1) + d] += 1.0;
        }
        sums
    });
    let mut acc = vec![0.0f64; k * (d + 1)];
    for part in partials {
        for (a, v) in acc.iter_mut().zip(part) {
            *a += v;
        }
    }
    let mut newc = vec![0.0f64; k * d];
    for c in 0..k {
        let count = acc[c * (d + 1) + d];
        let denom = if count == 0.0 { 1.0 } else { count };
        for j in 0..d {
            newc[c * d + j] = acc[c * (d + 1) + j] / denom;
        }
    }
    let mut m = Arrays::new();
    m.insert("newCentroids".into(), newc);
    m
}

/// Direct 3×3 valid convolution. The suite convention fixes the kernel
/// window at 3×3 on a square image (like kmeans' fixed k = 8), so the
/// shapes recover from the array lengths: `h = w = sqrt(|img|)`,
/// `cout = |wt| / 9`. Accumulation steps round to f32 like the
/// accelerator datapath, making the output bit-identical to the
/// benchmark's reference (each (channel, row) is independent, so the
/// result is also thread-count invariant).
fn conv2d(inputs: &Arrays, threads: usize) -> Arrays {
    let (img, wts) = (&inputs["img"], &inputs["wt"]);
    let w = (img.len() as f64).sqrt().round() as usize;
    let (kh, kw) = (3usize, 3usize);
    let cout = wts.len() / (kh * kw);
    let (hout, wout) = (w - kh + 1, w - kw + 1);
    let rows = par_reduce(cout * hout, threads, |lo, hi| {
        let mut out = Vec::with_capacity((hi - lo) * wout);
        for ci in lo..hi {
            let (c, i) = (ci / hout, ci % hout);
            for j in 0..wout {
                let mut acc = 0.0f64;
                for u in 0..kh {
                    for v in 0..kw {
                        let prod = (img[(i + u) * w + (j + v)] * wts[(c * kh + u) * kw + v]) as f32;
                        acc = (acc + f64::from(prod)) as f32 as f64;
                    }
                }
                out.push(acc);
            }
        }
        out
    });
    let mut m = Arrays::new();
    m.insert("out".into(), rows.concat());
    m
}

/// Attention block (scores, stable log-domain row softmax, value
/// contraction). The suite convention fixes the head dimension at 32,
/// so `n = |q| / 32`. Per-op f32 rounding mirrors the accelerator
/// datapath bit-for-bit; rows are independent, so chunking over rows is
/// thread-count invariant.
fn attention(inputs: &Arrays, threads: usize) -> Arrays {
    let (q, k, v) = (&inputs["q"], &inputs["k"], &inputs["v"]);
    let d = 32usize;
    let n = q.len() / d;
    let scale = f64::from((1.0 / (d as f64).sqrt()) as f32);
    let rows = par_reduce(n, threads, |lo, hi| {
        let mut out = Vec::with_capacity((hi - lo) * d);
        let mut s = vec![0.0f64; n];
        for i in lo..hi {
            for (r, sr) in s.iter_mut().enumerate() {
                let mut acc = 0.0f64;
                for j in 0..d {
                    let prod = (q[i * d + j] * k[r * d + j]) as f32;
                    acc = (acc + f64::from(prod)) as f32 as f64;
                }
                *sr = acc;
            }
            let mut m = f64::NEG_INFINITY;
            for &sr in &s {
                m = m.max(sr) as f32 as f64;
            }
            let mut sum = 0.0f64;
            for &sr in &s {
                let e = ((((sr - m) as f32 as f64) * scale) as f32 as f64).exp() as f32 as f64;
                sum = (sum + e) as f32 as f64;
            }
            let lse = sum.ln() as f32 as f64;
            for sr in s.iter_mut() {
                let sc = (((*sr - m) as f32 as f64) * scale) as f32 as f64;
                *sr = (((sc - lse) as f32 as f64).exp()) as f32 as f64;
            }
            for jd in 0..d {
                let mut acc = 0.0f64;
                for (r, &pr) in s.iter().enumerate() {
                    let prod = (pr * v[r * d + jd]) as f32;
                    acc = (acc + f64::from(prod)) as f32 as f64;
                }
                out.push(acc);
            }
        }
        out
    });
    let mut m = Arrays::new();
    m.insert("out".into(), rows.concat());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_apps::{Attention, Conv2d, DotProduct, Gda, Gemm, KMeans, TpchQ6};

    fn close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        let scale = b.iter().map(|v| v.abs()).fold(1e-30, f64::max);
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() / scale < tol, "[{i}] {x} vs {y}");
        }
    }

    #[test]
    fn cpu_kernels_match_references() {
        let benches: Vec<Box<dyn Benchmark>> = vec![
            Box::new(DotProduct::new(1_920)),
            Box::new(Gemm::new(48, 48, 48)),
            Box::new(TpchQ6::new(960)),
            Box::new(Gda::new(96, 8)),
            Box::new(KMeans::new(192, 8, 8)),
        ];
        for b in benches {
            let cpu = run(b.as_ref(), 1);
            for (name, expected) in b.reference() {
                let got = &cpu.outputs[&name];
                close(got, &expected, 1e-3);
            }
        }
    }

    #[test]
    fn dnn_kernels_are_bit_exact_and_thread_invariant() {
        // conv2d and attention mirror the accelerator's f32 stepping, so
        // they must equal the benchmark references *bitwise*, for any
        // thread count.
        let benches: Vec<Box<dyn Benchmark>> =
            vec![Box::new(Conv2d::new(18, 4)), Box::new(Attention::new(16))];
        for b in benches {
            let inputs = b.inputs();
            let reference = b.reference();
            for threads in [1, 3, 8] {
                let got = dispatch(b.as_ref(), &inputs, threads);
                for (name, expected) in &reference {
                    assert_eq!(
                        &got[name],
                        expected,
                        "{} `{name}` differs at {threads} threads",
                        b.name()
                    );
                }
            }
        }
    }

    #[test]
    fn chunking_covers_everything() {
        let c = chunks(10, 3);
        assert_eq!(c, vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(chunks(2, 8), vec![(0, 1), (1, 2)]);
        assert!(chunks(0, 4).is_empty());
    }

    #[test]
    fn timing_is_recorded() {
        let r = run(&DotProduct::new(9_600), 2);
        assert!(r.elapsed.as_nanos() > 0);
        assert_eq!(r.runs, 2);
    }
}
