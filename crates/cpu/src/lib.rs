//! # dhdl-cpu — CPU baselines for the Figure 6 comparison
//!
//! Two complementary pieces:
//!
//! * [`kernels`] — optimized multi-threaded Rust implementations of every
//!   benchmark (the OptiML/OpenBLAS stand-ins of §V-D), used to validate
//!   functional outputs and to measure real host kernel times;
//! * [`XeonModel`] — a roofline-style performance model of the paper's
//!   6-core Xeon E5-2630 platform, converting each benchmark's
//!   [`dhdl_apps::WorkProfile`] into platform-comparable CPU time so the
//!   Figure 6 speedups are reproducible on any host.
//!
//! ```
//! use dhdl_apps::{Benchmark, DotProduct};
//! use dhdl_cpu::XeonModel;
//!
//! let bench = DotProduct::new(96_000);
//! let model = XeonModel::default();
//! let seconds = model.seconds(&bench.work());
//! assert!(seconds > 0.0);
//! ```

#![warn(missing_docs)]

pub mod kernels;
mod model;

pub use kernels::{run, CpuRun};
pub use model::XeonModel;
