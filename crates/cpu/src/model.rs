//! Performance model of the paper's CPU platform.
//!
//! Figure 6 normalizes FPGA execution times against "optimized multi-core
//! CPU implementations running on a 6 core Intel Xeon E5-2630 at 2.30 GHz
//! with a 15 MB LLC and a maximum main memory bandwidth of 42.6 GB/s",
//! each benchmark run with 6 threads (§V-D). Since this reproduction runs
//! on arbitrary hosts, CPU time on *that* platform is computed from a
//! roofline-style model over each benchmark's [`WorkProfile`], with
//! per-class effective throughputs:
//!
//! * BLAS-3 kernels use the paper's own OpenBLAS figure (89 GFLOP/s);
//! * generated streaming C++ sustains moderate SIMD throughput and ~85%
//!   of peak bandwidth, with stores paying read-for-ownership traffic;
//! * branchy kernels (tpchq6) lose frontend throughput to data-dependent
//!   branch mispredictions;
//! * transcendentals price at libm-call rates.
//!
//! The measured multithreaded Rust kernels of [`crate::kernels`] validate
//! functionality and provide host-relative sanity numbers; the model
//! provides platform-comparable ones.

use dhdl_apps::WorkProfile;

/// The 6-core Xeon E5-2630 model.
#[derive(Debug, Clone, PartialEq)]
pub struct XeonModel {
    /// Cores used (paper: 6 threads).
    pub cores: f64,
    /// Clock in Hz.
    pub clock_hz: f64,
    /// Achievable main-memory bandwidth in bytes/s for streaming reads.
    pub bandwidth: f64,
    /// Effective simple-FLOP throughput per core per cycle for generated
    /// (auto-vectorized) C++.
    pub flops_per_cycle: f64,
    /// OpenBLAS sustained GFLOP/s for BLAS-3 (the paper reports 89).
    pub blas3_flops: f64,
    /// Effective FLOP throughput per core per cycle for cache-hostile
    /// kernels that defeat vectorization (scalar inner loops over
    /// L1-thrashing accumulators, e.g. gda's per-row D x D update).
    pub hostile_flops_per_cycle: f64,
    /// Cycles per scalar division (pipelined SIMD divide).
    pub div_cycles: f64,
    /// Cycles per square root.
    pub sqrt_cycles: f64,
    /// Cycles per `exp` / `ln` (libm calls in generated code).
    pub transcendental_cycles: f64,
    /// Bandwidth efficiency factor for branchy streaming kernels.
    pub branchy_efficiency: f64,
    /// Bandwidth efficiency factor for well-behaved streaming kernels.
    pub stream_efficiency: f64,
}

impl Default for XeonModel {
    fn default() -> Self {
        XeonModel {
            cores: 6.0,
            clock_hz: 2.3e9,
            bandwidth: 42.6e9,
            flops_per_cycle: 4.0,
            hostile_flops_per_cycle: 0.35,
            blas3_flops: 89.0e9,
            div_cycles: 15.0,
            sqrt_cycles: 15.0,
            transcendental_cycles: 40.0,
            branchy_efficiency: 0.60,
            stream_efficiency: 0.85,
        }
    }
}

impl XeonModel {
    /// Aggregate cycles/second across all cores.
    fn core_cycles_per_s(&self) -> f64 {
        self.cores * self.clock_hz
    }

    /// Modeled execution time in seconds for one benchmark run.
    pub fn seconds(&self, w: &WorkProfile) -> f64 {
        // Compute-side time.
        let compute = if w.blas3 {
            w.total_flops() / self.blas3_flops
        } else {
            let fpc = if w.cache_hostile {
                self.hostile_flops_per_cycle
            } else {
                self.flops_per_cycle
            };
            let simple = w.flops / (self.core_cycles_per_s() * fpc);
            let special = (w.divs * self.div_cycles
                + w.sqrts * self.sqrt_cycles
                + (w.exps + w.lns) * self.transcendental_cycles)
                / self.core_cycles_per_s();
            simple + special
        };
        // Memory-side time: writes to freshly allocated output arrays pay
        // demand-zeroing plus read-for-ownership (the generated code does
        // not use non-temporal stores), so each written byte moves ~3x;
        // branchy kernels lose effective bandwidth to pipeline stalls.
        let eff = if w.branchy {
            self.branchy_efficiency
        } else {
            self.stream_efficiency
        };
        let bytes = w.bytes_read + 3.0 * w.bytes_written;
        let memory = bytes / (self.bandwidth * eff);
        compute.max(memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streaming(bytes: f64) -> WorkProfile {
        WorkProfile {
            flops: bytes / 4.0,
            bytes_read: bytes,
            ..WorkProfile::default()
        }
    }

    #[test]
    fn memory_bound_kernels_track_bandwidth() {
        let m = XeonModel::default();
        let t = m.seconds(&streaming(42.6e9 * 0.85));
        assert!((t - 1.0).abs() < 0.05, "{t}");
    }

    #[test]
    fn blas3_uses_openblas_rate() {
        let m = XeonModel::default();
        let w = WorkProfile {
            flops: 89.0e9,
            bytes_read: 1e6,
            blas3: true,
            ..WorkProfile::default()
        };
        assert!((m.seconds(&w) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn branchy_kernels_are_slower() {
        let m = XeonModel::default();
        let mut w = streaming(1e9);
        let clean = m.seconds(&w);
        w.branchy = true;
        assert!(m.seconds(&w) > clean);
    }

    #[test]
    fn transcendentals_dominate_compute() {
        let m = XeonModel::default();
        let w = WorkProfile {
            flops: 1e6,
            exps: 1e8,
            bytes_read: 1e6,
            ..WorkProfile::default()
        };
        // 1e8 exps at 40 cycles on 13.8e9 cycles/s ≈ 290 ms.
        let t = m.seconds(&w);
        assert!((t - 0.290).abs() < 0.02, "{t}");
    }

    #[test]
    fn writes_pay_rfo() {
        let m = XeonModel::default();
        let r = m.seconds(&WorkProfile {
            bytes_read: 1e9,
            flops: 1.0,
            ..WorkProfile::default()
        });
        let w = m.seconds(&WorkProfile {
            bytes_written: 1e9,
            flops: 1.0,
            ..WorkProfile::default()
        });
        assert!((w / r - 3.0).abs() < 1e-9);
    }
}
