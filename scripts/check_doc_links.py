#!/usr/bin/env python3
"""Fail on broken intra-repo links in the given markdown files.

Checks every inline markdown link whose target is not an external URL:

* relative file targets must exist on disk (resolved against the
  directory of the file containing the link);
* fragment targets (``#anchor`` or ``file.md#anchor``) must match a
  heading in the target file, using GitHub's slug rules (lowercase,
  punctuation stripped, spaces become hyphens, duplicates suffixed
  ``-1``, ``-2``, ...).

Usage: scripts/check_doc_links.py README.md DESIGN.md ...
Exits non-zero listing every broken link; prints a one-line summary
otherwise. No dependencies beyond the standard library.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*)$")
CODE_FENCE = re.compile(r"^\s*(```|~~~)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # strip inline code ticks
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # [t](u) -> t
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    seen = {}
    out = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING.match(line)
        if not m:
            continue
        slug = slugify(m.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        out.add(slug if n == 0 else f"{slug}-{n}")
    return out


def links_of(path: Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK.finditer(line):
            yield lineno, m.group(1)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    anchor_cache = {}
    broken = []
    checked = 0
    for name in argv[1:]:
        doc = Path(name)
        if not doc.is_file():
            broken.append(f"{name}: file not found")
            continue
        for lineno, target in links_of(doc):
            if target.startswith(EXTERNAL):
                continue
            checked += 1
            file_part, _, frag = target.partition("#")
            dest = doc if not file_part else (doc.parent / file_part)
            if not dest.exists():
                broken.append(f"{doc}:{lineno}: missing target `{target}`")
                continue
            if frag:
                if not dest.is_file() or dest.suffix.lower() not in (".md", ".markdown"):
                    broken.append(
                        f"{doc}:{lineno}: fragment on non-markdown target `{target}`"
                    )
                    continue
                if dest not in anchor_cache:
                    anchor_cache[dest] = anchors_of(dest)
                if frag.lower() not in anchor_cache[dest]:
                    broken.append(f"{doc}:{lineno}: no heading for `{target}`")
    if broken:
        print(f"{len(broken)} broken link(s):", file=sys.stderr)
        for b in broken:
            print(f"  {b}", file=sys.stderr)
        return 1
    print(f"doc links ok: {checked} intra-repo links across {len(argv) - 1} files")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
