//! # dhdl-suite — facade over the DHDL accelerator-generation framework
//!
//! A Rust reproduction of Koeplinger et al., *Automatic Generation of
//! Efficient Accelerators for Reconfigurable Hardware* (ISCA 2016). The
//! workspace implements the full toolchain of the paper's Figure 1:
//! a parameterized hardware IR ([`core`]), millisecond-scale area/runtime
//! estimation ([`estimate`]), design space exploration ([`dse`]), hardware
//! generation and a synthesis model ([`synth`]), an execution substrate
//! ([`sim`]), the seven evaluation benchmarks ([`apps`]), CPU baselines
//! ([`cpu`]) and a mock commercial HLS tool ([`hls`]).
//!
//! See `README.md` for a walkthrough and `DESIGN.md` for the architecture.
//!
//! ```
//! use dhdl_suite::apps::{Benchmark, DotProduct};
//!
//! let bench = DotProduct::new(9_600);
//! let design = bench.build(&bench.default_params()).unwrap();
//! assert_eq!(design.name(), "dotproduct");
//! ```

pub use dhdl_apps as apps;
pub use dhdl_core as core;
pub use dhdl_cpu as cpu;
pub use dhdl_dse as dse;
pub use dhdl_estimate as estimate;
pub use dhdl_hls as hls;
pub use dhdl_mlp as mlp;
pub use dhdl_patterns as patterns;
pub use dhdl_sim as sim;
pub use dhdl_synth as synth;
pub use dhdl_target as target;
