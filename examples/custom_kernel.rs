//! Writing your own accelerator: a SAXPY kernel built directly with the
//! DHDL builder API, plus a top-K selection kernel using the hardware
//! priority queue template — then tiled, explored and simulated like any
//! built-in benchmark.
//!
//! Run with: `cargo run --release --example custom_kernel`

use dhdl_suite::apps::{Benchmark, Saxpy};
use dhdl_suite::core::{by, DType, DesignBuilder, ParamValues};
use dhdl_suite::dse::{explore, DseOptions};
use dhdl_suite::estimate::Estimator;
use dhdl_suite::sim::{simulate, Bindings};
use dhdl_suite::target::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::maia();
    println!("calibrating estimator...");
    let estimator = Estimator::calibrate(&platform, 5);

    // --- Part 1: SAXPY through the Benchmark trait -------------------
    let saxpy = Saxpy::new(24_576, 2.5);
    let result = explore(
        |p| saxpy.build(p),
        &saxpy.param_space(),
        &estimator,
        &DseOptions {
            max_points: 200,
            ..DseOptions::default()
        },
    );
    let best = result.best().expect("valid saxpy design");
    println!(
        "saxpy best design {} -> {:.0} cycles",
        best.params, best.cycles
    );
    let design = saxpy.build(&best.params)?;
    let mut bindings = Bindings::new();
    for (name, data) in saxpy.inputs() {
        bindings = bindings.bind(&name, data);
    }
    let sim = simulate(&design, &platform, &bindings)?;
    let out = sim.output("out")?;
    let expected = &saxpy.reference()["out"];
    assert!(out.iter().zip(expected).all(|(a, b)| (a - b).abs() < 1e-6));
    println!(
        "saxpy validated: {} elements in {:.3} ms",
        out.len(),
        sim.seconds(&platform) * 1e3
    );

    // --- Part 2: a hand-written top-K kernel with a priority queue ----
    // Streams a vector through a hardware sorting queue and emits the K
    // smallest elements in ascending order (Table I's PriorityQueue
    // template).
    let n: u64 = 512;
    let k: u64 = 8;
    let params = ParamValues::new().with("ts", n);
    let ts = params.dim("ts")?;
    let mut b = DesignBuilder::new("topk");
    let x = b.off_chip("x", DType::F32, &[n]);
    let out = b.off_chip("smallest", DType::F32, &[k]);
    b.sequential(|b| {
        let xt = b.bram("xT", DType::F32, &[ts]);
        let z = b.index_const(0);
        b.tile_load(x, xt, &[z], &[ts], 1);
        let q = b.priority_queue("q", DType::F32, n);
        b.pipe(&[by(ts, 1)], 1, |b, it| {
            let v = b.load(xt, &[it[0]]);
            b.store(q, &[], v); // push
        });
        let ot = b.bram("oT", DType::F32, &[k]);
        b.pipe(&[by(k, 1)], 1, |b, it| {
            let v = b.load(q, &[]); // pop-min
            b.store(ot, &[it[0]], v);
        });
        let z2 = b.index_const(0);
        b.tile_store(out, ot, &[z2], &[k], 1);
    });
    let design = b.finish()?;
    let est = estimator.estimate(&design);
    println!(
        "topk: estimated {:.0} cycles, {:.0} ALMs",
        est.cycles, est.area.alms
    );
    let data: Vec<f64> = (0..n).map(|i| ((i * 7919) % 1000) as f64).collect();
    let mut sorted = data.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let sim = simulate(&design, &platform, &Bindings::new().bind("x", data))?;
    let got = sim.output("smallest")?;
    assert_eq!(got, &sorted[..k as usize]);
    println!("topk validated: smallest {k} of {n} = {got:?}");
    Ok(())
}
