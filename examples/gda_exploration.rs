//! Design space exploration on GDA — the paper's running example
//! (Figures 2–4): explore tile sizes, parallelization factors and
//! MetaPipe toggles, print the Pareto frontier, and show how the two
//! MetaPipe toggles change the best design.
//!
//! Run with: `cargo run --release --example gda_exploration`

use dhdl_suite::apps::{Benchmark, Gda};
use dhdl_suite::dse::{explore, DseOptions};
use dhdl_suite::estimate::Estimator;
use dhdl_suite::target::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::maia();
    let bench = Gda::default();
    println!("GDA ({}), parameters from Figure 3:", bench.dataset_desc());
    for def in bench.param_space().defs() {
        println!(
            "  {:4}  legal values: {:?}",
            def.name,
            def.kind.legal_values()
        );
    }
    println!("legal design space: {} points", bench.param_space().size());

    println!("\ncalibrating estimator...");
    let estimator = Estimator::calibrate(&platform, 7);
    let opts = DseOptions {
        max_points: 2_000,
        ..DseOptions::default()
    };
    let result = explore(|p| bench.build(p), &bench.param_space(), &estimator, &opts);
    println!(
        "evaluated {} sampled points ({} discarded), {} on the Pareto front:\n",
        result.points.len(),
        result.discarded,
        result.pareto.len()
    );
    println!(
        "{:<55} {:>12} {:>10} {:>8}",
        "params", "cycles", "ALMs", "valid"
    );
    for p in result.pareto_points().take(12) {
        println!(
            "{:<55} {:>12.0} {:>10.0} {:>8}",
            p.params.to_string(),
            p.cycles,
            p.area.alms,
            p.valid
        );
    }

    // The MetaPipe toggles of Figure 4: compare the best fully-Sequential
    // design against the best coarse-grained-pipelined one.
    let best_with = result
        .points
        .iter()
        .filter(|p| p.valid && p.params.get("m1") == Some(1))
        .map(|p| p.cycles)
        .fold(f64::INFINITY, f64::min);
    let best_without = result
        .points
        .iter()
        .filter(|p| p.valid && p.params.get("m1") == Some(0) && p.params.get("m2") == Some(0))
        .map(|p| p.cycles)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nbest with MetaPipes: {best_with:.0} cycles; Sequential-only: {best_without:.0} \
         cycles ({:.2}x slower)",
        best_without / best_with
    );
    Ok(())
}
