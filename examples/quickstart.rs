//! Quickstart: build a dot-product accelerator, estimate it, synthesize
//! it, simulate it, and generate its MaxJ code — the complete Figure 1
//! flow on one design instance.
//!
//! Run with: `cargo run --release --example quickstart`

use dhdl_suite::apps::{Benchmark, DotProduct};
use dhdl_suite::estimate::Estimator;
use dhdl_suite::sim::{simulate, Bindings};
use dhdl_suite::synth;
use dhdl_suite::target::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::maia();

    // 1. A benchmark is a DHDL metaprogram: instantiate it with concrete
    //    design parameters (tile size, parallelization, MetaPipe toggle).
    let bench = DotProduct::new(98_304);
    let params = bench.default_params();
    let design = bench.build(&params)?;
    println!("built `{}` with {}", design.name(), params);
    println!("{design}");

    // 2. Fast estimation (the paper's core contribution): calibrate once
    //    per target, then estimate any design in microseconds.
    println!("calibrating estimator (one-time per target)...");
    let estimator = Estimator::calibrate(&platform, 42);
    let est = estimator.estimate(&design);
    println!(
        "estimate: {:.0} cycles ({:.3} ms at 150 MHz), {:.0} ALMs, {:.0} DSPs, {:.0} BRAMs",
        est.cycles,
        est.seconds(&platform) * 1e3,
        est.area.alms,
        est.area.dsps,
        est.area.brams
    );

    // 3. Synthesis model: the post-place-and-route ground truth.
    let report = synth::synthesize(&design, &platform.fpga);
    println!(
        "synthesis: {:.0} ALMs ({:.0} route LUTs, {:.0} dup BRAMs)",
        report.alms, report.luts_route, report.brams_dup
    );

    // 4. Execute the design on the simulator with real data.
    let mut bindings = Bindings::new();
    for (name, data) in bench.inputs() {
        bindings = bindings.bind(&name, data);
    }
    let result = simulate(&design, &platform, &bindings)?;
    let expected = bench.reference()["out"][0];
    println!(
        "simulated: {:.0} cycles, result {:.3} (expected {:.3})",
        result.cycles,
        result.output("out")?[0],
        expected
    );
    println!(
        "runtime estimation error: {:.2}%",
        100.0 * (est.cycles - result.cycles).abs() / result.cycles
    );

    // 5. Generate hardware (MaxJ).
    let maxj = synth::maxj::generate(&design);
    println!(
        "generated {} lines of MaxJ; first lines:",
        maxj.lines().count()
    );
    for line in maxj.lines().take(12) {
        println!("    {line}");
    }
    Ok(())
}
