//! Black-Scholes acceleration end to end: find the best design by DSE,
//! execute it on the simulated platform against real option data, validate
//! the prices against the analytic reference, and compare against the
//! modeled 6-core CPU — the paper's headline 16.7x speedup benchmark.
//!
//! Run with: `cargo run --release --example blackscholes_accel`

use dhdl_suite::apps::{Benchmark, BlackScholes};
use dhdl_suite::cpu::XeonModel;
use dhdl_suite::dse::{explore, DseOptions};
use dhdl_suite::estimate::Estimator;
use dhdl_suite::sim::{simulate, Bindings};
use dhdl_suite::target::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::maia();
    let bench = BlackScholes::new(49_152);

    println!("calibrating estimator...");
    let estimator = Estimator::calibrate(&platform, 99);
    let result = explore(
        |p| bench.build(p),
        &bench.param_space(),
        &estimator,
        &DseOptions {
            max_points: 500,
            ..DseOptions::default()
        },
    );
    let best = result.best().expect("a valid blackscholes design exists");
    println!(
        "best design: {} (estimated {:.0} cycles, {:.1}% of ALMs)",
        best.params,
        best.cycles,
        100.0 * best.area.alms / platform.fpga.alms as f64
    );

    // Execute on the platform simulator with the real dataset.
    let design = bench.build(&best.params)?;
    let mut bindings = Bindings::new();
    for (name, data) in bench.inputs() {
        bindings = bindings.bind(&name, data);
    }
    let sim = simulate(&design, &platform, &bindings)?;
    let fpga_s = sim.seconds(&platform);

    // Validate the computed option prices.
    let prices = sim.output("price")?;
    let reference = bench.reference();
    let expected = &reference["price"];
    let mut worst = 0.0f64;
    for (p, e) in prices.iter().zip(expected) {
        worst = worst.max((p - e).abs());
    }
    println!(
        "priced {} options in {:.3} ms; worst abs error vs analytic reference: {:.2e}",
        prices.len(),
        fpga_s * 1e3,
        worst
    );
    assert!(worst < 1e-2, "prices must match the reference");

    // Compare against the modeled Xeon E5-2630 (the paper's CPU baseline).
    let cpu_s = XeonModel::default().seconds(&bench.work());
    println!(
        "CPU model: {:.3} ms; FPGA speedup {:.1}x (paper: 16.7x)",
        cpu_s * 1e3,
        cpu_s / fpga_s
    );
    Ok(())
}
