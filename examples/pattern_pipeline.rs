//! The parallel-pattern frontend end to end (Figure 1, Step 1 onward):
//! write a small analytics pipeline as map/filter/groupBy patterns, fuse
//! it, lower it to DHDL, explore its design space, and simulate the best
//! design — without ever touching the builder API.
//!
//! Run with: `cargo run --release --example pattern_pipeline`

use dhdl_suite::apps::{Arrays, Benchmark, PatternBenchmark};
use dhdl_suite::core::{DType, PrimOp, ReduceOp};
use dhdl_suite::dse::{explore, DseOptions};
use dhdl_suite::estimate::Estimator;
use dhdl_suite::patterns::{Expr, PatternProgram};
use dhdl_suite::target::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mini query over a table of transactions: scale amounts, sum the
    // large ones, and histogram all of them into 8 buckets.
    let n = 12_288u64;
    let mut prog = PatternProgram::new();
    let amounts = prog.input("amounts", n, DType::F32);
    let scaled = prog.map(
        "scaled",
        &[amounts],
        Expr::mul(Expr::input(0), Expr::lit(1.0825)), // add sales tax
    );
    prog.filter_reduce(
        "large_total",
        &[scaled],
        Expr::bin(PrimOp::Gt, Expr::input(0), Expr::lit(500.0)),
        Expr::input(0),
        ReduceOp::Add,
    );
    prog.group_by_reduce(
        "histogram",
        &[scaled],
        Expr::mul(Expr::input(0), Expr::lit(8.0 / 1100.0)), // bucket index
        Expr::lit(1.0),
        ReduceOp::Add,
        8,
    );

    let mut inputs = Arrays::new();
    inputs.insert(
        "amounts".into(),
        (0..n).map(|i| ((i * 73) % 1000) as f64 + 0.5).collect(),
    );
    // PatternBenchmark fuses the program (the producer map disappears into
    // both consumers) and derives reference outputs + work profile.
    let bench = PatternBenchmark::new("txquery", "Transaction analytics", prog, inputs);
    println!(
        "fused program: {} patterns ({})",
        bench.program().ops().len(),
        bench.dataset_desc()
    );

    println!("calibrating estimator...");
    let platform = Platform::maia();
    let estimator = Estimator::calibrate(&platform, 17);
    let result = explore(
        |p| bench.build(p),
        &bench.param_space(),
        &estimator,
        &DseOptions {
            max_points: 300,
            ..DseOptions::default()
        },
    );
    let best = result.best().expect("a valid design exists");
    println!(
        "best of {} evaluated points: {} ({:.0} est. cycles)",
        result.points.len(),
        best.params,
        best.cycles
    );

    // Simulate and check against the pattern interpreter.
    let design = bench.build(&best.params)?;
    let mut bindings = dhdl_suite::sim::Bindings::new();
    for (k, v) in bench.inputs() {
        bindings = bindings.bind(&k, v);
    }
    let sim = dhdl_suite::sim::simulate(&design, &platform, &bindings)?;
    let expected = bench.reference();
    let total = sim.output("large_total")?[0];
    let hist = sim.output("histogram")?;
    assert!((total - expected["large_total"][0]).abs() < 1e-2 * total.abs());
    assert_eq!(hist, &expected["histogram"][..]);
    println!(
        "simulated {:.0} cycles ({:.3} ms): large_total = {total:.2}, histogram = {hist:?}",
        sim.cycles,
        sim.seconds(&platform) * 1e3
    );
    Ok(())
}
