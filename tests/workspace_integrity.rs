//! Workspace integrity smoke test.
//!
//! The repository once shipped with `crates/target/` missing: a
//! `target/`-style ignore rule in a packing tool silently dropped the
//! whole crate, and `cargo metadata` failed before a single test could
//! run. This test encodes the invariant that every workspace member the
//! root manifest promises actually exists on disk with a manifest and
//! sources. For members in the façade's dependency graph (like
//! `crates/target/`), dropping them already fails the build at manifest
//! load — any `cargo test` run dies, which is itself the signal — while
//! this test additionally catches members *outside* that graph (the
//! vendored dependency subsets, future leaf crates) and partial drops
//! (manifest present, sources gone) that would otherwise surface later
//! or not at all.

use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Member entries of `[workspace] members`, with `*` globs expanded
/// against the directories present on disk.
fn member_dirs(root: &Path, manifest: &str) -> Vec<PathBuf> {
    let members_line = manifest
        .lines()
        .find(|l| l.trim_start().starts_with("members"))
        .expect("root Cargo.toml has a [workspace] members list");
    let list = members_line
        .split_once('[')
        .and_then(|(_, rest)| rest.split_once(']'))
        .map(|(inner, _)| inner)
        .expect("members list is a single-line array");
    let mut dirs = Vec::new();
    for entry in list.split(',') {
        let entry = entry.trim().trim_matches('"');
        if entry.is_empty() {
            continue;
        }
        if let Some(parent) = entry.strip_suffix("/*") {
            let parent_dir = root.join(parent);
            let listing = fs::read_dir(&parent_dir)
                .unwrap_or_else(|e| panic!("members glob `{entry}`: cannot read {parent}: {e}"));
            let mut expanded: Vec<PathBuf> = listing
                .filter_map(Result::ok)
                .map(|d| d.path())
                .filter(|p| p.is_dir())
                .collect();
            assert!(
                !expanded.is_empty(),
                "members glob `{entry}` matches no directories"
            );
            expanded.sort();
            dirs.extend(expanded);
        } else {
            dirs.push(root.join(entry));
        }
    }
    dirs
}

#[test]
fn every_workspace_member_exists_with_a_manifest() {
    let root = repo_root();
    let manifest = fs::read_to_string(root.join("Cargo.toml")).expect("read root Cargo.toml");
    let dirs = member_dirs(&root, &manifest);
    assert!(dirs.len() >= 12, "expected a full workspace, got {dirs:?}");
    for dir in &dirs {
        assert!(
            dir.join("Cargo.toml").is_file(),
            "workspace member {} has no Cargo.toml — a packing or ignore rule \
             probably dropped it (this is how crates/target/ was once lost)",
            dir.display()
        );
        assert!(
            dir.join("src").join("lib.rs").is_file() || dir.join("src").join("main.rs").is_file(),
            "workspace member {} has no src/lib.rs or src/main.rs",
            dir.display()
        );
    }
}

#[test]
fn every_path_dependency_in_the_root_manifest_exists() {
    let root = repo_root();
    let manifest = fs::read_to_string(root.join("Cargo.toml")).expect("read root Cargo.toml");
    let mut checked = 0;
    for line in manifest.lines() {
        let Some((_, rest)) = line.split_once("path = \"") else {
            continue;
        };
        let Some((path, _)) = rest.split_once('"') else {
            continue;
        };
        assert!(
            root.join(path).join("Cargo.toml").is_file(),
            "dependency path `{path}` in the root Cargo.toml does not exist on disk"
        );
        checked += 1;
    }
    // All 12 dhdl crates plus the 3 vendored dependency subsets.
    assert!(
        checked >= 15,
        "expected >= 15 path dependencies, saw {checked}"
    );
}

#[test]
fn the_device_model_crate_is_present() {
    // The specific regression: crates/target/ must never vanish again.
    let target = repo_root().join("crates").join("target");
    assert!(
        target.join("Cargo.toml").is_file(),
        "crates/target/Cargo.toml missing"
    );
    for f in ["lib.rs", "fpga.rs", "dram.rs", "power.rs"] {
        assert!(
            target.join("src").join(f).is_file(),
            "crates/target/src/{f} missing"
        );
    }
}
