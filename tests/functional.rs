//! Cross-crate functional validation: every benchmark's simulated outputs
//! must match its reference implementation (small instances, multiple
//! parameter points including both MetaPipe-toggle settings).

use dhdl_apps::{
    Benchmark, BlackScholes, DotProduct, Gda, Gemm, KMeans, OuterProduct, Saxpy, TpchQ6,
};
use dhdl_core::ParamValues;
use dhdl_sim::{simulate, Bindings, SimResult};
use dhdl_target::Platform;

fn run(bench: &dyn Benchmark, params: &ParamValues) -> SimResult {
    let design = bench
        .build(params)
        .unwrap_or_else(|e| panic!("{}: build failed: {e}", bench.name()));
    let mut bindings = Bindings::new();
    for (name, data) in bench.inputs() {
        bindings = bindings.bind(&name, data);
    }
    simulate(&design, &Platform::maia(), &bindings)
        .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", bench.name()))
}

fn assert_outputs_match(bench: &dyn Benchmark, params: &ParamValues, rel_tol: f64) {
    let result = run(bench, params);
    for (name, expected) in bench.reference() {
        let got = result
            .output(&name)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
        assert_eq!(
            got.len(),
            expected.len(),
            "{}: output `{name}` length",
            bench.name()
        );
        let scale = expected
            .iter()
            .map(|v| v.abs())
            .fold(0.0f64, f64::max)
            .max(1e-30);
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            let err = (g - e).abs() / scale;
            assert!(
                err < rel_tol,
                "{}: `{name}`[{i}] = {g}, expected {e} (rel err {err:.2e}, params {params})",
                bench.name()
            );
        }
    }
    assert!(result.cycles > 0.0, "{}: zero cycles", bench.name());
}

#[test]
fn dotproduct_matches_reference() {
    let b = DotProduct::new(1_920);
    for (mp, ip, op) in [(1, 4, 1), (0, 1, 1), (1, 8, 2)] {
        let p = ParamValues::new()
            .with("ts", 96)
            .with("ip", ip)
            .with("op", op)
            .with("mp", mp);
        assert_outputs_match(&b, &p, 1e-4);
    }
}

#[test]
fn outerprod_matches_reference() {
    let b = OuterProduct::new(128);
    for (m1, m2) in [(0, 0), (1, 1)] {
        let p = ParamValues::new()
            .with("ts1", 32)
            .with("ts2", 64)
            .with("p", 2)
            .with("mp1", m1)
            .with("mp2", m2);
        assert_outputs_match(&b, &p, 1e-9);
    }
}

#[test]
fn gemm_matches_reference() {
    let b = Gemm::new(32, 24, 16);
    for (m1, m2) in [(1, 1), (0, 1), (1, 0)] {
        let p = ParamValues::new()
            .with("tm", 8)
            .with("tn", 12)
            .with("tk", 8)
            .with("p", 2)
            .with("mp1", m1)
            .with("mp2", m2);
        assert_outputs_match(&b, &p, 1e-4);
    }
}

#[test]
fn tpchq6_matches_reference() {
    let b = TpchQ6::new(1_920);
    let p = ParamValues::new()
        .with("ts", 96)
        .with("ip", 4)
        .with("op", 1)
        .with("mp", 1);
    assert_outputs_match(&b, &p, 1e-4);
}

#[test]
fn blackscholes_matches_reference() {
    let b = BlackScholes::new(192);
    let p = ParamValues::new()
        .with("ts", 96)
        .with("ip", 2)
        .with("mp", 1);
    // f32 CND evaluation accumulates a few ulps of error vs. the f64
    // reference; prices are O(10), so 1e-4 relative is ~millicents.
    assert_outputs_match(&b, &p, 1e-3);
}

#[test]
fn gda_matches_reference() {
    let b = Gda::new(96, 8);
    for (m1, m2) in [(1, 1), (0, 0)] {
        let p = ParamValues::new()
            .with("rts", 12)
            .with("p1", 2)
            .with("p2", 4)
            .with("m2p", 1)
            .with("m1p", 1)
            .with("m1", m1)
            .with("m2", m2);
        assert_outputs_match(&b, &p, 1e-4);
    }
}

#[test]
fn kmeans_matches_reference() {
    let b = KMeans::new(192, 4, 8);
    for mp in [0, 1] {
        let p = ParamValues::new()
            .with("pts", 24)
            .with("dp", 2)
            .with("pp", 3)
            .with("mp", mp)
            .with("mp2", 1);
        assert_outputs_match(&b, &p, 1e-4);
    }
}

#[test]
fn saxpy_matches_reference() {
    let b = Saxpy::new(384, 1.5);
    let p = ParamValues::new()
        .with("ts", 96)
        .with("ip", 4)
        .with("mp", 1);
    assert_outputs_match(&b, &p, 1e-9);
}

#[test]
fn sim_cycles_vary_with_parameters() {
    // Timing sanity: more parallelism means fewer cycles for the
    // compute-bound GDA kernel.
    let b = Gda::new(192, 16);
    let slow = run(
        &b,
        &ParamValues::new()
            .with("rts", 24)
            .with("p1", 1)
            .with("p2", 1)
            .with("m2p", 1)
            .with("m1p", 1)
            .with("m1", 0)
            .with("m2", 0),
    );
    let fast = run(
        &b,
        &ParamValues::new()
            .with("rts", 24)
            .with("p1", 4)
            .with("p2", 8)
            .with("m2p", 1)
            .with("m1p", 2)
            .with("m1", 1)
            .with("m2", 1),
    );
    assert!(
        fast.cycles < slow.cycles,
        "fast {} vs slow {}",
        fast.cycles,
        slow.cycles
    );
}

#[test]
fn fixed_point_datapath_quantizes() {
    // An elementwise kernel on a fixed-point type must quantize exactly as
    // the DType model specifies (exercising the Fix datapath end to end).
    use dhdl_core::{by, DType, DesignBuilder};
    let q = DType::fixed(true, 7, 4); // step 1/16, range ~[-128, 128)
    let n = 64u64;
    let mut b = DesignBuilder::new("fixmap");
    let x = b.off_chip("x", q, &[n]);
    let y = b.off_chip("y", q, &[n]);
    b.sequential(|b| {
        let xt = b.bram("xT", q, &[n]);
        let yt = b.bram("yT", q, &[n]);
        let z = b.index_const(0);
        b.tile_load(x, xt, &[z], &[n], 1);
        b.pipe(&[by(n, 1)], 1, |b, it| {
            let v = b.load(xt, &[it[0]]);
            let c = b.constant(0.3, q); // quantizes to 5/16
            let w = b.add(v, c);
            b.store(yt, &[it[0]], w);
        });
        b.tile_store(y, yt, &[z], &[n], 1);
    });
    let d = b.finish().unwrap();
    let data: Vec<f64> = (0..n).map(|i| (i as f64) / 7.0 - 4.0).collect();
    let r = simulate(
        &d,
        &Platform::maia(),
        &Bindings::new().bind("x", data.clone()),
    )
    .unwrap();
    let out = r.output("y").unwrap();
    for (i, (&got, &orig)) in out.iter().zip(&data).enumerate() {
        let expected = q.quantize(q.quantize(orig) + q.quantize(0.3));
        assert_eq!(got, expected, "index {i}");
        // Outputs land on the fixed-point grid.
        assert_eq!((got * 16.0).fract(), 0.0, "index {i}: {got}");
    }
}

#[test]
fn dot_export_works_for_benchmarks() {
    for bench in dhdl_apps::all().into_iter().take(3) {
        let design = bench.build(&bench.default_params()).unwrap();
        let dot = dhdl_core::export::to_dot(&design);
        assert!(dot.starts_with("digraph"), "{}", bench.name());
        assert_eq!(
            dot.matches('{').count(),
            dot.matches('}').count(),
            "{}",
            bench.name()
        );
    }
}
