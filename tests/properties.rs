//! Property-based tests over the core data structures and invariants:
//! parameter-space pruning, simulator/estimator monotonicity, the DRAM
//! timeline, Pareto frontiers and the pattern interpreter/lowering
//! equivalence.

use dhdl_core::{by, DType, DesignBuilder, ParamKind, ReduceOp};
use dhdl_dse::pareto_front;
use dhdl_sim::{simulate, Bindings, DramTimeline};
use dhdl_target::Platform;
use proptest::prelude::*;

proptest! {
    /// Every legal tile value divides the annotated dimension and lies in
    /// range (§IV-C pruning).
    #[test]
    fn tile_legal_values_divide(n in 1u64..20_000, min in 1u64..64, span in 1u64..512) {
        let max = min + span;
        let kind = ParamKind::Tile { divides: n, min, max };
        for v in kind.legal_values() {
            prop_assert_eq!(n % v, 0);
            prop_assert!(v >= min && v <= max);
        }
    }

    /// Par values divide the trip count.
    #[test]
    fn par_legal_values_divide(n in 1u64..10_000, max in 1u64..128) {
        let kind = ParamKind::Par { divides: n, max };
        let values = kind.legal_values();
        prop_assert!(!values.is_empty());
        for v in values {
            prop_assert_eq!(n % v, 0);
            prop_assert!(v <= max || v == 1);
        }
    }

    /// The DRAM timeline conserves channel time: total busy time equals
    /// the sum of requested ideals, regardless of issue order.
    #[test]
    fn dram_timeline_conserves_bandwidth(
        reqs in prop::collection::vec((0.0f64..10_000.0, 1.0f64..500.0), 1..40)
    ) {
        let mut t = DramTimeline::new();
        let mut total = 0.0;
        for &(start, ideal) in &reqs {
            let d = t.request(start, ideal);
            // A transfer is never faster than its unloaded duration.
            prop_assert!(d >= ideal - 1e-9);
            total += ideal;
        }
        prop_assert!((t.busy_cycles() - total).abs() < 1e-6);
        prop_assert_eq!(t.transfers(), reqs.len());
    }

    /// The Pareto front never contains a dominated point and is sorted by
    /// increasing cycles / decreasing area.
    #[test]
    fn pareto_front_is_minimal(
        pts in prop::collection::vec((1.0f64..1e6, 1.0f64..1e6, any::<bool>()), 0..60)
    ) {
        let front = pareto_front(&pts);
        for (k, &i) in front.iter().enumerate() {
            prop_assert!(pts[i].2, "invalid point on front");
            // No other valid point dominates it.
            for (j, p) in pts.iter().enumerate() {
                if j != i && p.2 {
                    let dominates =
                        p.0 <= pts[i].0 && p.1 <= pts[i].1 && (p.0 < pts[i].0 || p.1 < pts[i].1);
                    prop_assert!(!dominates, "point {j} dominates front point {i}");
                }
            }
            if k > 0 {
                let prev = front[k - 1];
                prop_assert!(pts[prev].0 <= pts[i].0);
                prop_assert!(pts[prev].1 >= pts[i].1);
            }
        }
    }

    /// A single-pipe elementwise design computes the right function for
    /// arbitrary inputs and always reports positive cycles.
    #[test]
    fn simulated_map_is_exact(
        data in prop::collection::vec(-1000.0f64..1000.0, 1..64),
        scale in -8.0f64..8.0
    ) {
        let n = data.len() as u64;
        let mut b = DesignBuilder::new("prop_map");
        let x = b.off_chip("x", DType::F32, &[n]);
        let y = b.off_chip("y", DType::F32, &[n]);
        b.sequential(|b| {
            let xt = b.bram("xT", DType::F32, &[n]);
            let yt = b.bram("yT", DType::F32, &[n]);
            let z = b.index_const(0);
            b.tile_load(x, xt, &[z], &[n], 1);
            b.pipe(&[by(n, 1)], 1, |b, it| {
                let v = b.load(xt, &[it[0]]);
                let s = b.constant(scale, DType::F32);
                let w = b.mul(v, s);
                b.store(yt, &[it[0]], w);
            });
            b.tile_store(y, yt, &[z], &[n], 1);
        });
        let design = b.finish().expect("valid");
        let data32: Vec<f64> = data.iter().map(|&v| v as f32 as f64).collect();
        let r = simulate(
            &design,
            &Platform::maia(),
            &Bindings::new().bind("x", data32.clone()),
        )
        .expect("simulates");
        let out = r.output("y").expect("y exists");
        for (i, (&got, &x)) in out.iter().zip(&data32).enumerate() {
            let expected = ((scale as f32 as f64) as f32 * x as f32) as f64;
            prop_assert!((got - expected).abs() < 1e-9, "i={i} {got} vs {expected}");
        }
        prop_assert!(r.cycles > 0.0);
    }

    /// Reductions over arbitrary data match a quantized fold, for every
    /// reduce operator.
    #[test]
    fn simulated_reduce_is_exact(
        data in prop::collection::vec(-100.0f64..100.0, 2..96),
        which in 0u8..3
    ) {
        let op = match which {
            0 => ReduceOp::Add,
            1 => ReduceOp::Min,
            _ => ReduceOp::Max,
        };
        let n = data.len() as u64;
        let mut b = DesignBuilder::new("prop_red");
        let x = b.off_chip("x", DType::F32, &[n]);
        let out = b.off_chip("out", DType::F32, &[1]);
        b.sequential(|b| {
            let xt = b.bram("xT", DType::F32, &[n]);
            let z = b.index_const(0);
            b.tile_load(x, xt, &[z], &[n], 1);
            let acc = b.reg("acc", DType::F32, 0.0);
            b.pipe_reduce(&[by(n, 1)], 1, acc, op, |b, it| b.load(xt, &[it[0]]));
            let ot = b.bram("oT", DType::F32, &[1]);
            b.pipe(&[by(1, 1)], 1, |b, it| {
                let v = b.load_reg(acc);
                b.store(ot, &[it[0]], v);
            });
            b.tile_store(out, ot, &[z], &[1], 1);
        });
        let design = b.finish().expect("valid");
        let data32: Vec<f64> = data.iter().map(|&v| v as f32 as f64).collect();
        let r = simulate(
            &design,
            &Platform::maia(),
            &Bindings::new().bind("x", data32.clone()),
        )
        .expect("simulates");
        let mut acc = op.identity();
        for &v in &data32 {
            acc = DType::F32.quantize(op.apply(acc, v));
        }
        let got = r.output("out").expect("out")[0];
        prop_assert!((got - acc).abs() < 1e-6, "{got} vs {acc}");
    }

    /// Pattern lowering preserves interpreter semantics for arbitrary
    /// affine kernels.
    #[test]
    fn pattern_lowering_matches_interpreter(
        data in prop::collection::vec(-64.0f64..64.0, 16..128),
        a in -4.0f64..4.0,
        c in -4.0f64..4.0
    ) {
        use dhdl_patterns::{default_params, lower, Expr, PatternProgram};
        let n = data.len() as u64;
        let mut p = PatternProgram::new();
        let x = p.input("x", n, DType::F32);
        p.map(
            "out",
            &[x],
            Expr::add(Expr::mul(Expr::lit(a), Expr::input(0)), Expr::lit(c)),
        );
        let mut inputs = std::collections::BTreeMap::new();
        let data32: Vec<f64> = data.iter().map(|&v| v as f32 as f64).collect();
        inputs.insert("x".to_string(), data32.clone());
        let expected = p.interpret(&inputs);
        let design = lower(&p, "prop_pat", &default_params(&p)).expect("lowers");
        let r = simulate(
            &design,
            &Platform::maia(),
            &Bindings::new().bind("x", data32),
        )
        .expect("simulates");
        let got = r.output("out").expect("out");
        for (g, e) in got.iter().zip(&expected["out"]) {
            prop_assert!((g - e).abs() < 1e-6, "{g} vs {e}");
        }
    }
}

/// Explicit replay of the shrunk counterexample recorded in
/// `tests/properties.proptest-regressions` for
/// `pattern_lowering_matches_interpreter`. The vendored proptest is
/// deterministic but does not read persistence files, so the historical
/// case is pinned here verbatim and CI replays it on every run.
#[test]
fn proptest_regression_pattern_lowering_shrunk_case() {
    use dhdl_patterns::{default_params, lower, Expr, PatternProgram};
    let mut data = [0.0f64; 16];
    data[15] = 18.302715350366025;
    let a = 2.835354037042272f64;
    let c = 0.0f64;
    let n = data.len() as u64;
    let mut p = PatternProgram::new();
    let x = p.input("x", n, DType::F32);
    p.map(
        "out",
        &[x],
        Expr::add(Expr::mul(Expr::lit(a), Expr::input(0)), Expr::lit(c)),
    );
    let mut inputs = std::collections::BTreeMap::new();
    let data32: Vec<f64> = data.iter().map(|&v| v as f32 as f64).collect();
    inputs.insert("x".to_string(), data32.clone());
    let expected = p.interpret(&inputs);
    let design = lower(&p, "prop_pat_regress", &default_params(&p)).expect("lowers");
    let r = simulate(
        &design,
        &Platform::maia(),
        &Bindings::new().bind("x", data32),
    )
    .expect("simulates");
    let got = r.output("out").expect("out");
    for (g, e) in got.iter().zip(&expected["out"]) {
        assert!((g - e).abs() < 1e-6, "{g} vs {e}");
    }
}
