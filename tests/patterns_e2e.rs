//! End-to-end validation of the parallel-pattern frontend: programs
//! written with map/reduce/filter patterns, fused and lowered to DHDL,
//! must simulate to exactly what the pattern interpreter computes.

use std::collections::BTreeMap;

use dhdl_core::{DType, PrimOp, ReduceOp};
use dhdl_patterns::{default_params, fuse, lower, Expr, PatternProgram};
use dhdl_sim::{simulate, Bindings};
use dhdl_target::Platform;

fn run_and_compare(prog: &PatternProgram, name: &str, inputs: &BTreeMap<String, Vec<f64>>) {
    let expected = prog.interpret(inputs);
    let design = lower(prog, name, &default_params(prog)).expect("lowering succeeds");
    let mut bindings = Bindings::new();
    for (k, v) in inputs {
        bindings = bindings.bind(k, v.clone());
    }
    let result = simulate(&design, &Platform::maia(), &bindings).expect("simulation succeeds");
    for off in design.offchips() {
        let Some(arr_name) = design.node(*off).name.clone() else {
            continue;
        };
        let Some(exp) = expected.get(&arr_name) else {
            continue; // inputs
        };
        let got = result.output(&arr_name).expect("output exists");
        assert_eq!(got.len(), exp.len(), "{name}: `{arr_name}` length");
        for (i, (g, e)) in got.iter().zip(exp).enumerate() {
            assert!(
                (g - e).abs() <= 1e-4 * e.abs().max(1.0),
                "{name}: `{arr_name}`[{i}] = {g}, expected {e}"
            );
        }
    }
    assert!(result.cycles > 0.0);
}

fn sample_inputs(names: &[&str], n: usize) -> BTreeMap<String, Vec<f64>> {
    names
        .iter()
        .enumerate()
        .map(|(k, name)| {
            let data = (0..n)
                .map(|i| (((i * 31 + k * 7) % 97) as f64 - 48.0) / 8.0)
                .map(|v| v as f32 as f64)
                .collect();
            (name.to_string(), data)
        })
        .collect()
}

#[test]
fn pattern_saxpy_matches_interpreter() {
    let mut p = PatternProgram::new();
    let x = p.input("x", 768, DType::F32);
    let y = p.input("y", 768, DType::F32);
    let ax = p.map("ax", &[x], Expr::mul(Expr::lit(2.5), Expr::input(0)));
    p.map("out", &[ax, y], Expr::add(Expr::input(0), Expr::input(1)));
    let inputs = sample_inputs(&["x", "y"], 768);
    run_and_compare(&p, "pat_saxpy", &inputs);
    run_and_compare(&fuse(&p), "pat_saxpy_fused", &inputs);
}

#[test]
fn pattern_dot_product_matches_interpreter() {
    let mut p = PatternProgram::new();
    let a = p.input("a", 1_536, DType::F32);
    let b = p.input("b", 1_536, DType::F32);
    p.reduce(
        "dot",
        &[a, b],
        Expr::mul(Expr::input(0), Expr::input(1)),
        ReduceOp::Add,
    );
    let inputs = sample_inputs(&["a", "b"], 1_536);
    run_and_compare(&p, "pat_dot", &inputs);
}

#[test]
fn pattern_squared_distance_fuses_and_matches() {
    let mut p = PatternProgram::new();
    let a = p.input("a", 1_024, DType::F32);
    let b = p.input("b", 1_024, DType::F32);
    let d = p.map("d", &[a, b], Expr::sub(Expr::input(0), Expr::input(1)));
    let sq = p.map("sq", &[d], Expr::mul(Expr::input(0), Expr::input(0)));
    p.reduce("dist", &[sq], Expr::input(0), ReduceOp::Add);
    let fused = fuse(&p);
    assert_eq!(fused.ops().len(), 1);
    let inputs = sample_inputs(&["a", "b"], 1_024);
    // Both the unfused (materializing) and fused programs must agree with
    // the interpreter on the surviving output.
    run_and_compare(&p, "pat_dist", &inputs);
    run_and_compare(&fused, "pat_dist_fused", &inputs);
}

#[test]
fn pattern_filter_reduce_matches_interpreter() {
    // A tpchq6-shaped query: sum(price * disc where 0.05 <= disc <= 0.07).
    let mut p = PatternProgram::new();
    let price = p.input("price", 960, DType::F32);
    let disc = p.input("disc", 960, DType::F32);
    let lo = Expr::bin(PrimOp::Ge, Expr::input(1), Expr::lit(-1.0));
    let hi = Expr::bin(PrimOp::Le, Expr::input(1), Expr::lit(1.0));
    let cond = Expr::bin(PrimOp::And, lo, hi);
    p.filter_reduce(
        "revenue",
        &[price, disc],
        cond,
        Expr::mul(Expr::input(0), Expr::input(1)),
        ReduceOp::Add,
    );
    let inputs = sample_inputs(&["price", "disc"], 960);
    run_and_compare(&p, "pat_q6", &inputs);
}

#[test]
fn pattern_max_reduce_matches_interpreter() {
    let mut p = PatternProgram::new();
    let a = p.input("a", 512, DType::F32);
    p.reduce(
        "max",
        &[a],
        Expr::un(PrimOp::Abs, Expr::input(0)),
        ReduceOp::Max,
    );
    let inputs = sample_inputs(&["a"], 512);
    run_and_compare(&p, "pat_max", &inputs);
}

#[test]
fn fused_program_is_cheaper_to_run() {
    let mut p = PatternProgram::new();
    let x = p.input("x", 4_096, DType::F32);
    let s1 = p.map("s1", &[x], Expr::mul(Expr::input(0), Expr::lit(3.0)));
    let s2 = p.map("s2", &[s1], Expr::add(Expr::input(0), Expr::lit(1.0)));
    p.reduce("total", &[s2], Expr::input(0), ReduceOp::Add);
    let fused = fuse(&p);
    let inputs = sample_inputs(&["x"], 4_096);
    let platform = Platform::maia();
    let cycles = |prog: &PatternProgram, name: &str| {
        let d = lower(prog, name, &default_params(prog)).unwrap();
        let mut bind = Bindings::new();
        for (k, v) in &inputs {
            bind = bind.bind(k, v.clone());
        }
        simulate(&d, &platform, &bind).unwrap().cycles
    };
    let full = cycles(&p, "chain_full");
    let short = cycles(&fused, "chain_fused");
    assert!(
        short < full * 0.7,
        "fusion must remove round-trips: {short} vs {full}"
    );
}

#[test]
fn pattern_group_by_reduce_matches_interpreter() {
    // Histogram-style: bucket values by floor(|x|) into 8 groups, sum the
    // values per bucket — the groupBy pattern §II calls out.
    let mut p = PatternProgram::new();
    let x = p.input("x", 768, DType::F32);
    let key = Expr::un(PrimOp::Abs, Expr::input(0));
    p.group_by_reduce("hist", &[x], key, Expr::lit(1.0), ReduceOp::Add, 8);
    let inputs = sample_inputs(&["x"], 768);
    run_and_compare(&p, "pat_hist", &inputs);
}

#[test]
fn pattern_fused_group_by_matches_interpreter() {
    // map producing keys and values, fused into the grouped reduction.
    let mut p = PatternProgram::new();
    let a = p.input("a", 512, DType::F32);
    let scaled = p.map("s", &[a], Expr::un(PrimOp::Abs, Expr::input(0)));
    p.group_by_reduce(
        "gmax",
        &[scaled],
        Expr::input(0),
        Expr::input(0),
        ReduceOp::Max,
        4,
    );
    let fused = fuse(&p);
    assert_eq!(fused.ops().len(), 1);
    let inputs = sample_inputs(&["a"], 512);
    run_and_compare(&fused, "pat_gmax", &inputs);
}

#[test]
fn pattern_benchmark_flows_through_the_whole_toolchain() {
    use dhdl_apps::{Arrays, Benchmark, PatternBenchmark};
    use dhdl_bench::Harness;

    let n = 1_536u64;
    let mut p = PatternProgram::new();
    let a = p.input("a", n, DType::F32);
    let b_arr = p.input("b", n, DType::F32);
    let d = p.map("d", &[a, b_arr], Expr::sub(Expr::input(0), Expr::input(1)));
    let sq = p.map("sq", &[d], Expr::mul(Expr::input(0), Expr::input(0)));
    p.reduce("dist", &[sq], Expr::input(0), ReduceOp::Add);
    let mut inputs = Arrays::new();
    for (name, seed) in [("a", 31u64), ("b", 32)] {
        let data: Vec<f64> = (0..n)
            .map(|i| ((((i + seed) * 37) % 101) as f64 / 50.0 - 1.0) as f32 as f64)
            .collect();
        inputs.insert(name.into(), data);
    }
    let bench = PatternBenchmark::new("pat_toolchain", "pattern e2e", p, inputs);

    let harness = Harness::new(0xFA7, 150);
    let dse = harness.explore(&bench);
    assert!(!dse.pareto.is_empty());
    let best = dse.best().unwrap();
    let design = bench.build(&best.params).unwrap();
    let sim = harness.simulate(&bench, &design);
    let expected = bench.reference()["dist"][0];
    let got = sim.output("dist").unwrap()[0];
    assert!(
        (got - expected).abs() < 1e-3 * expected.abs().max(1.0),
        "{got} vs {expected}"
    );
    // The estimator tracked the simulated runtime for the chosen point.
    let err = (best.cycles - sim.cycles).abs() / sim.cycles;
    assert!(err < 0.3, "estimate {} vs sim {}", best.cycles, sim.cycles);
}
