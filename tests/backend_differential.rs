//! Tape-vs-interpreter differential replay over the persisted corpus.
//!
//! Every design case in `tests/corpus/` is run through both simulator
//! backends and the results compared bit-for-bit — outputs, cycles,
//! transfers, profile and trace. Cases outside the tape-compilable
//! subset fall back to the interpreter (by construction identical), but
//! the suite requires that a healthy majority of the corpus genuinely
//! compiles, so the tape path cannot silently rot behind the fallback.

use std::path::Path;

use dhdl_conformance::corpus::load_dir;
use dhdl_conformance::CaseKind;
use dhdl_sim::{compile, simulate, Bindings, CompileError};
use dhdl_target::Platform;

#[test]
fn corpus_designs_are_bit_identical_across_backends() {
    let cases = load_dir(Path::new("tests/corpus")).expect("corpus directory loads");
    let platform = Platform::maia();
    let mut compiled_cases = 0usize;
    let mut design_cases = 0usize;
    let mut failures = Vec::new();
    for (path, case) in &cases {
        let CaseKind::Design(spec) = &case.kind else {
            continue;
        };
        design_cases += 1;
        let design = match spec.build() {
            Ok(d) => d,
            Err(e) => {
                failures.push(format!("{}: spec no longer builds: {e}", path.display()));
                continue;
            }
        };
        let (x, y) = spec.inputs();
        let mut bindings = Bindings::new().bind("x", x);
        if spec.uses_second() {
            bindings = bindings.bind("y", y);
        }
        let compiled = match compile(&design, &platform) {
            Ok(c) => c,
            Err(CompileError::Unsupported(_)) => continue,
        };
        compiled_cases += 1;
        match (
            simulate(&design, &platform, &bindings),
            compiled.run(&bindings),
        ) {
            (Ok(interp), Ok(tape)) => {
                if let Some(diff) = interp.bit_diff(&tape) {
                    failures.push(format!("{}: {diff}", path.display()));
                }
            }
            (Err(a), Err(b)) => {
                if a.to_string() != b.to_string() {
                    failures.push(format!(
                        "{}: error divergence: interp `{a}` vs tape `{b}`",
                        path.display()
                    ));
                }
            }
            (Ok(_), Err(e)) => failures.push(format!(
                "{}: tape failed where interpreter succeeded: {e}",
                path.display()
            )),
            (Err(e), Ok(_)) => failures.push(format!(
                "{}: interpreter failed where tape succeeded: {e}",
                path.display()
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "backend divergence on corpus:\n{}",
        failures.join("\n")
    );
    assert!(
        design_cases >= 6,
        "corpus unexpectedly small: {design_cases} design cases"
    );
    assert!(
        compiled_cases * 2 >= design_cases,
        "tape backend compiled only {compiled_cases}/{design_cases} corpus designs — \
         the compilable subset regressed"
    );
}
