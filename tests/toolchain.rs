//! Whole-toolchain integration tests: every benchmark must flow through
//! estimation, synthesis, code generation and exploration without
//! surprises, and the estimator must track the synthesis model within
//! loose, universal bounds.

use dhdl_bench::Harness;
use dhdl_estimate::Estimator;
use dhdl_synth::{maxj, synthesize};
use dhdl_target::Platform;

#[test]
fn every_benchmark_estimates_synthesizes_and_generates() {
    let platform = Platform::maia();
    let (estimator, _) = Estimator::calibrate_with(&platform, 60, 21);
    for bench in dhdl_apps::all() {
        let design = bench
            .build(&bench.default_params())
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
        let est = estimator.estimate(&design);
        assert!(est.cycles > 0.0, "{}", bench.name());
        assert!(est.area.alms > 0.0, "{}", bench.name());
        let truth = synthesize(&design, &platform.fpga);
        assert!(truth.alms > 0.0, "{}", bench.name());
        // Estimates track truth within a factor of 2 on every axis even
        // for uncalibrated default points.
        let ratio = est.area.alms / truth.alms;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "{}: ALM ratio {ratio}",
            bench.name()
        );
        let code = maxj::generate(&design);
        assert!(
            code.contains("extends Kernel"),
            "{}: maxj missing kernel",
            bench.name()
        );
        assert_eq!(
            code.matches('{').count(),
            code.matches('}').count(),
            "{}: unbalanced maxj braces",
            bench.name()
        );
        // Every off-chip memory appears in the generated code.
        for &off in design.offchips() {
            let name = design.node(off).name.clone().unwrap();
            assert!(
                code.contains(&name),
                "{}: `{name}` missing from maxj",
                bench.name()
            );
        }
    }
}

#[test]
fn estimation_is_deterministic_and_fast() {
    let platform = Platform::maia();
    let (estimator, _) = Estimator::calibrate_with(&platform, 60, 22);
    let bench = dhdl_apps::Gda::default();
    use dhdl_apps::Benchmark as _;
    let design = bench.build(&bench.default_params()).unwrap();
    let a = estimator.estimate(&design);
    let b = estimator.estimate(&design);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.area, b.area);
    // Speed: well under a millisecond per estimate even in debug builds
    // would be flaky to assert; assert a generous bound in any profile.
    let start = std::time::Instant::now();
    for _ in 0..10 {
        let _ = estimator.estimate(&design);
    }
    let per = start.elapsed().as_secs_f64() / 10.0;
    assert!(per < 0.25, "estimation took {per} s/design");
}

#[test]
fn dse_best_points_simulate_close_to_estimates() {
    // The contract that makes DSE trustworthy: for Pareto winners the
    // estimated cycle counts stay within ~25% of simulated ground truth.
    let harness = Harness::new(0x77, 300);
    for name in ["dotproduct", "tpchq6", "saxpy"] {
        let bench: Box<dyn dhdl_apps::Benchmark> = match name {
            "saxpy" => Box::new(dhdl_apps::Saxpy::default()),
            other => dhdl_apps::by_name(other).unwrap(),
        };
        let dse = harness.explore(bench.as_ref());
        let best = dse.best().unwrap_or_else(|| panic!("{name}: no best"));
        let design = bench.build(&best.params).unwrap();
        let sim = harness.simulate(bench.as_ref(), &design);
        let err = (best.cycles - sim.cycles).abs() / sim.cycles;
        assert!(
            err < 0.25,
            "{name}: estimate {} vs simulated {} ({:.1}% error)",
            best.cycles,
            sim.cycles,
            err * 100.0
        );
    }
}

#[test]
fn synthesis_report_is_internally_consistent() {
    let platform = Platform::maia();
    for bench in dhdl_apps::all() {
        let design = bench.build(&bench.default_params()).unwrap();
        let r = synthesize(&design, &platform.fpga);
        assert!(r.alms > 0.0);
        assert!(r.regs >= r.regs_dup, "{}", bench.name());
        assert!(r.brams >= r.brams_dup, "{}", bench.name());
        assert!(r.luts_route < r.luts_logic, "{}", bench.name());
        assert!(r.dsps >= 0.0);
    }
}

#[test]
fn design_serialization_roundtrips_every_benchmark() {
    use dhdl_core::serialize::{from_text, to_text};
    // One full estimator calibration is enough; roundtrip all below.
    if let Some(bench) = dhdl_apps::all().into_iter().next() {
        let design = bench.build(&bench.default_params()).unwrap();
        let text = to_text(&design);
        let back = from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
        assert_eq!(design, back, "{}", bench.name());
        // Serialized designs estimate identically.
        let platform = Platform::maia();
        let (estimator, _) = Estimator::calibrate_with(&platform, 20, 77);
        assert_eq!(
            estimator.estimate(&design).cycles,
            estimator.estimate(&back).cycles,
            "{}",
            bench.name()
        );
    }
    for bench in dhdl_apps::all() {
        let design = bench.build(&bench.default_params()).unwrap();
        let back = from_text(&to_text(&design)).unwrap();
        assert_eq!(design, back, "{}", bench.name());
    }
}

#[test]
fn random_legal_points_all_build() {
    use dhdl_dse::LegalSpace;
    for bench in dhdl_apps::all() {
        let space = bench.param_space();
        let legal = LegalSpace::new(&space);
        for (k, params) in legal.sample(25, 0xbeef).into_iter().enumerate() {
            bench
                .build(&params)
                .unwrap_or_else(|e| panic!("{} point {k} ({params}): {e}", bench.name()));
        }
    }
}

#[test]
fn midrange_device_shrinks_the_valid_space() {
    // Portability: the same benchmark explored on a smaller device yields
    // fewer valid points (device capacities flow through estimation).
    use dhdl_dse::{explore, DseOptions};
    use dhdl_target::{DramModel, FpgaTarget, Platform, PowerModel};
    let bench = dhdl_apps::BlackScholes::new(9_216);
    use dhdl_apps::Benchmark as _;
    let small_platform = Platform {
        fpga: FpgaTarget::midrange(),
        dram: DramModel::maia(),
        power: PowerModel::stratix_v(),
    };
    let (est_small, _) = Estimator::calibrate_with(&small_platform, 30, 5);
    let (est_big, _) = Estimator::calibrate_with(&Platform::maia(), 30, 5);
    let opts = DseOptions {
        max_points: 120,
        ..DseOptions::default()
    };
    let space = bench.param_space();
    let r_small = explore(|p| bench.build(p), &space, &est_small, &opts);
    let r_big = explore(|p| bench.build(p), &space, &est_big, &opts);
    let valid = |r: &dhdl_dse::DseResult| r.points.iter().filter(|p| p.valid).count();
    assert!(
        valid(&r_small) < valid(&r_big),
        "midrange {} vs stratix {}",
        valid(&r_small),
        valid(&r_big)
    );
}

#[test]
fn simulator_trace_exports_valid_vcd() {
    let harness = Harness::new(0x7C, 50);
    let bench = dhdl_apps::DotProduct::new(1_920);
    use dhdl_apps::Benchmark as _;
    let design = bench.build(&bench.default_params()).unwrap();
    let result = harness.simulate(&bench, &design);
    assert!(!result.trace().is_empty());
    let vcd = result.trace().to_vcd(&design);
    assert!(vcd.contains("$enddefinitions"));
    // Every controller that executed appears as a wire.
    for e in result.profile() {
        assert!(
            vcd.contains(&format!("_{}", e.ctrl.index())),
            "missing wire for {}",
            e.label
        );
    }
    // The last activity ends at (or before) the reported total.
    let last_end = result
        .trace()
        .events()
        .iter()
        .map(|e| e.end)
        .fold(0.0f64, f64::max);
    assert!(last_end <= result.cycles + 1.0);
}

#[test]
fn estimator_breakdown_matches_total() {
    use dhdl_estimate::{estimate_breakdown, estimate_cycles};
    let platform = Platform::maia();
    for bench in dhdl_apps::all() {
        let design = bench.build(&bench.default_params()).unwrap();
        let total = estimate_cycles(&design, &platform);
        let breakdown = estimate_breakdown(&design, &platform);
        assert_eq!(breakdown[0].ctrl, design.top(), "{}", bench.name());
        assert!(
            (breakdown[0].total - total).abs() < 1e-6,
            "{}: {} vs {}",
            bench.name(),
            breakdown[0].total,
            total
        );
        assert_eq!(breakdown.len(), design.controllers().len());
    }
}
