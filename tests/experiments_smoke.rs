//! Smoke tests for the experiment harness itself: miniature versions of
//! each table/figure computation run under `cargo test`, so the
//! reproduction pipeline is covered without executing the full binaries.

use dhdl_bench::report::{ascii_scatter, Table};
use dhdl_bench::{Harness, PointEval};
use dhdl_cpu::XeonModel;
use dhdl_hls::{estimate as hls_estimate, HlsMode, ResourceLimits};

fn mini_harness() -> Harness {
    // Small sample budget; model comes from the on-disk cache when warm.
    Harness::new(0x51, 60)
}

#[test]
fn mini_table3_errors_are_single_digit_ish() {
    let harness = mini_harness();
    let bench = dhdl_apps::DotProduct::new(9_600);

    let dse = harness.explore(&bench);
    let picks = harness.pareto_sample(&dse, 3);
    assert!(!picks.is_empty());
    let mut worst = [0.0f64; 4];
    for p in &picks {
        let eval = harness.evaluate(&bench, p);
        let (a, d, b, r) = eval.errors();
        worst[0] = worst[0].max(a);
        worst[1] = worst[1].max(d);
        worst[2] = worst[2].max(b);
        worst[3] = worst[3].max(r);
    }
    // Loose bound: every error under 30% on a mini run.
    for (i, w) in worst.iter().enumerate() {
        assert!(*w < 0.30, "axis {i}: {w}");
    }
    let _ = PointEval::rel_err(1.0, 1.0);
}

#[test]
fn mini_table4_ordering_holds() {
    // Our estimator must beat both HLS modes; full must cost more than
    // restricted — the Table IV ordering, at toy scale.
    use dhdl_apps::Benchmark as _;
    let harness = mini_harness();
    let gda = dhdl_apps::Gda::new(192, 32);
    let t0 = std::time::Instant::now();
    for _ in 0..5 {
        let design = gda.build(&gda.default_params()).unwrap();
        let _ = harness.estimator.estimate(&design);
    }
    let ours = t0.elapsed() / 5;
    let mut kernel = gda.hls_kernel().unwrap();
    // Table IV's "full" column pipelines the outer loop (Figure 2's L1).
    for l in &mut kernel.loops {
        l.pipeline = true;
    }
    let limits = ResourceLimits::default();
    let restricted = hls_estimate(&kernel, HlsMode::Restricted, &limits);
    let full = hls_estimate(&kernel, HlsMode::Full, &limits);
    // Full mode completely unrolls the inner loops: a much larger
    // scheduling problem (wall-clock comparisons are too noisy for CI).
    assert!(
        full.scheduled_ops > restricted.scheduled_ops * 10,
        "{full:?} vs {restricted:?}"
    );
    assert!(
        full.elapsed > ours,
        "full HLS {:?} must cost more than ours {:?}",
        full.elapsed,
        ours
    );
}

#[test]
fn mini_fig5_scatter_renders() {
    let harness = mini_harness();
    let bench = dhdl_apps::BlackScholes::new(4_608);
    let dse = harness.explore(&bench);
    let target = &harness.platform.fpga;
    let pts: Vec<(f64, f64, u8)> = dse
        .points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let (a, _, _) = p.area.utilization(target);
            let class = if dse.pareto.contains(&i) {
                2
            } else {
                u8::from(p.valid)
            };
            (a, p.cycles, class)
        })
        .collect();
    let plot = ascii_scatter(&pts, 48, 12);
    assert!(plot.contains('#'), "pareto points must render:\n{plot}");
    assert!(plot.lines().count() >= 12);
}

#[test]
fn mini_fig6_speedup_is_finite_and_positive() {
    use dhdl_apps::Benchmark as _;
    let harness = mini_harness();
    let bench = dhdl_apps::TpchQ6::new(9_600);
    let dse = harness.explore(&bench);
    let best = dse.best().expect("valid point");
    let design = bench.build(&best.params).unwrap();
    let sim = harness.simulate(&bench, &design);
    let fpga_s = sim.seconds(&harness.platform);
    let cpu_s = XeonModel::default().seconds(&bench.work());
    let speedup = cpu_s / fpga_s;
    assert!(speedup.is_finite() && speedup > 0.0);
    // At 1/10 scale tpchq6 stays in the same order of magnitude as parity.
    assert!((0.1..=10.0).contains(&speedup), "speedup {speedup}");
}

#[test]
fn mini_energy_fpga_wins() {
    use dhdl_apps::Benchmark as _;
    let harness = mini_harness();
    let bench = dhdl_apps::BlackScholes::new(4_608);
    let dse = harness.explore(&bench);
    let best = dse.best().expect("valid point");
    let design = bench.build(&best.params).unwrap();
    let sim = harness.simulate(&bench, &design);
    let area = dhdl_synth::synthesize(&design, &harness.platform.fpga).area_report();
    let fpga_j = harness.platform.power.joules(
        &area,
        harness.platform.fpga.fabric_clock_hz,
        sim.seconds(&harness.platform),
    );
    let cpu_j = 95.0 * XeonModel::default().seconds(&bench.work());
    assert!(
        cpu_j / fpga_j > 10.0,
        "blackscholes energy advantage should be large: {}",
        cpu_j / fpga_j
    );
}

#[test]
fn report_tables_render_for_experiment_shapes() {
    let mut t = Table::new(&["Benchmark", "value"]);
    for b in dhdl_apps::all() {
        t.row(&[b.name().to_string(), b.dataset_desc()]);
    }
    let s = t.render();
    assert_eq!(s.lines().count(), 2 + dhdl_apps::all().len());
    assert!(t.to_csv().lines().count() == 1 + dhdl_apps::all().len());
}
