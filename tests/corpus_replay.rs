//! Deterministic replay of the persisted conformance corpus.
//!
//! Every `tests/corpus/*.case` file — seed cases plus any shrunk
//! counterexamples the fuzzer has persisted — must parse and must pass
//! the full layered oracle with zero violations. A failing replay means
//! either a regression reintroduced an old bug (the case file names the
//! invariant it once violated) or a new change broke a seed case.

use std::path::Path;

use dhdl_conformance::corpus::load_dir;
use dhdl_conformance::Conformance;

#[test]
fn corpus_replays_with_zero_violations() {
    let dir = Path::new("tests/corpus");
    let cases = load_dir(dir).expect("corpus directory loads");
    assert!(
        cases.len() >= 10,
        "corpus unexpectedly small ({} cases) — seed cases missing?",
        cases.len()
    );
    let conf = Conformance::new();
    let mut failures = Vec::new();
    for (path, case) in &cases {
        let violations = case.check(&conf);
        if !violations.is_empty() {
            failures.push(format!("{}: {:?}", path.display(), violations));
        }
    }
    assert!(
        failures.is_empty(),
        "corpus replay found violations:\n{}",
        failures.join("\n")
    );
}

#[test]
fn corpus_covers_both_spec_kinds() {
    let cases = load_dir(Path::new("tests/corpus")).expect("corpus directory loads");
    let designs = cases
        .iter()
        .filter(|(_, c)| matches!(c.kind, dhdl_conformance::CaseKind::Design(_)))
        .count();
    let patterns = cases.len() - designs;
    assert!(designs >= 6, "want >= 6 design cases, have {designs}");
    assert!(patterns >= 4, "want >= 4 pattern cases, have {patterns}");
}
