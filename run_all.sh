#!/usr/bin/env bash
# Regenerate every table and figure of the evaluation (EXPERIMENTS.md).
set -euo pipefail
cargo build --release --workspace
for b in table2 table3 table4 fig5 fig6 energy ablations; do
  echo "=== $b ==="
  cargo run -q -p dhdl-bench --bin "$b" --release
done
