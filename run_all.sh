#!/usr/bin/env bash
# Regenerate every table and figure of the evaluation (EXPERIMENTS.md).
set -euo pipefail

# Stream DSE progress to results/checkpoints/<bench>.ckpt so an
# interrupted run (Ctrl-C, crash, or a DHDL_DSE_DEADLINE_MS expiry)
# resumes where it left off on the next invocation; completed sweeps
# clean their checkpoints up. Set DHDL_DSE_CHECKPOINT=0 to disable,
# DHDL_DSE_THREADS=<n> to pin the sweep worker count.
export DHDL_DSE_CHECKPOINT="${DHDL_DSE_CHECKPOINT:-1}"

# Memoize design-point estimates under results/cache/ (keyed by the
# trained model's fingerprint): re-runs answer every previously seen
# design from the cache and skip rebuilding it entirely, so a repeated
# invocation of this script sweeps orders of magnitude faster. Set
# DHDL_DSE_CACHE=mem for in-process-only caching or =off to disable;
# delete results/cache/ to force cold re-estimation.
export DHDL_DSE_CACHE="${DHDL_DSE_CACHE:-disk}"

# Observability: DHDL_OBS=summary prints a span/counter table per binary,
# =json writes results/obs/<bin>.obs.json, =chrome writes
# results/obs/<bin>.trace.json (load in chrome://tracing or Perfetto).
# Off by default; recording never changes any result (sweeps are
# byte-identical either way).
export DHDL_OBS="${DHDL_OBS:-off}"

cargo build --release --workspace

# Differential-conformance gate: fuzz randomly generated DHDL designs
# through the sim/estimator/synth/CPU oracle stack before trusting the
# toolchain to regenerate results. Deterministic for the fixed seed;
# shrunk counterexamples (if any) land in tests/corpus/ for replay.
# Set DHDL_FUZZ_DESIGNS=0 to skip.
DHDL_FUZZ_DESIGNS="${DHDL_FUZZ_DESIGNS:-500}"
if [ "$DHDL_FUZZ_DESIGNS" -gt 0 ]; then
  echo "=== conformance fuzz ($DHDL_FUZZ_DESIGNS designs) ==="
  cargo run -q -p dhdl-conformance --bin dhdl-fuzz --release -- \
    --designs "$DHDL_FUZZ_DESIGNS" --seed 0
fi

# Simulator backend throughput: interpreter vs. tape-compiled, with a
# bit-identity cross-check per benchmark (results/BENCH_sim.json).
echo "=== simbench ==="
cargo run -q -p dhdl-bench --bin simbench --release

for b in table2 table3 table4 fig5 fig6 energy ablations; do
  echo "=== $b ==="
  cargo run -q -p dhdl-bench --bin "$b" --release
done

# Search-strategy comparison: the surrogate-guided DSE against the
# random sweep at 10% of its budget (results/BENCH_dse.json). dsebench
# exits nonzero — failing this script loudly — if the surrogate front's
# hypervolume regresses below DHDL_DSEBENCH_FLOOR (default 90%) of the
# random front's on any benchmark, or if its determinism re-run
# diverges. Budget-capped via DHDL_DSEBENCH_POINTS; set it to 0 to skip.
DHDL_DSEBENCH_POINTS="${DHDL_DSEBENCH_POINTS:-1500}"
if [ "$DHDL_DSEBENCH_POINTS" -gt 0 ]; then
  echo "=== dsebench (random@$DHDL_DSEBENCH_POINTS vs surrogate@10%) ==="
  DHDL_DSEBENCH_POINTS="$DHDL_DSEBENCH_POINTS" \
    cargo run -q -p dhdl-bench --bin dsebench --release
fi

# DNN workload frontier: conv2d + attention explored under both search
# strategies, the best designs simulated under both simulator backends
# with a bit-exact cross-check, and modeled speedups vs. the CPU model
# (results/BENCH_dnn.json, byte-identical across re-runs and thread
# counts). Set DHDL_DNN_POINTS=0 to skip.
DHDL_DNN_POINTS="${DHDL_DNN_POINTS:-2000}"
if [ "$DHDL_DNN_POINTS" -gt 0 ]; then
  echo "=== dnnbench ==="
  DHDL_DNN_POINTS="$DHDL_DNN_POINTS" \
    cargo run -q -p dhdl-bench --bin dnnbench --release
fi

# Multi-FPGA partitioning axis: gemm/gda/conv2d swept at K=1,2,4
# devices (results/BENCH_part.json, byte-identical across thread
# counts). partbench exits nonzero — failing this script loudly —
# unless some configuration that is infeasible on one device becomes
# valid at K>1. Set DHDL_PART_POINTS=0 to skip.
DHDL_PART_POINTS="${DHDL_PART_POINTS:-800}"
if [ "$DHDL_PART_POINTS" -gt 0 ]; then
  echo "=== partbench (K=1,2,4 @ $DHDL_PART_POINTS points) ==="
  DHDL_PART_POINTS="$DHDL_PART_POINTS" \
    cargo run -q -p dhdl-bench --bin partbench --release
fi

# DSE-as-a-service smoke: a few seconds of Zipf-skewed multi-tenant
# traffic against a live dhdl-serve instance, recording throughput and
# hit/miss latency percentiles (results/BENCH_serve.json). The load
# generator exits nonzero on any protocol violation, then drains the
# server via the shutdown op; `wait` propagates the server's exit code.
# Set DHDL_LOADGEN_SECS=0 to skip.
DHDL_LOADGEN_SECS="${DHDL_LOADGEN_SECS:-5}"
if [ "$DHDL_LOADGEN_SECS" -gt 0 ]; then
  echo "=== serve smoke (${DHDL_LOADGEN_SECS}s) ==="
  SERVE_ADDR="${DHDL_SERVE_ADDR:-127.0.0.1:7561}"
  DHDL_SERVE_ADDR="$SERVE_ADDR" target/release/dhdl-serve &
  SERVE_PID=$!
  for _ in $(seq 1 120); do
    if (exec 3<>"/dev/tcp/${SERVE_ADDR%:*}/${SERVE_ADDR#*:}") 2>/dev/null; then
      break
    fi
    sleep 0.5
  done
  DHDL_SERVE_ADDR="$SERVE_ADDR" DHDL_LOADGEN_SECS="$DHDL_LOADGEN_SECS" \
    DHDL_LOADGEN_SHUTDOWN=1 target/release/dhdl-loadgen
  wait "$SERVE_PID"
fi
