#!/bin/sh
# Regenerate every table and figure of the evaluation (EXPERIMENTS.md).
set -e
cargo build --release --workspace
for b in table2 table3 table4 fig5 fig6 energy ablations; do
  echo "=== $b ==="
  cargo run -q -p dhdl-bench --bin "$b" --release
done
